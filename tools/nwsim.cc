/**
 * @file
 * nwsim command-line front end.
 *
 *     nwsim list
 *         List the built-in workloads (Tables 2 and 3 proxies).
 *
 *     nwsim run <workload | file.s | wgen:spec> [options]
 *         Simulate a built-in workload, an assembly source file, or a
 *         generated workload (`wgen:seed=7,ops=64,...` — docs/CONFIG.md).
 *
 *     nwsim config list
 *         Presets, +modifiers, and discovered `.cfg` config files.
 *
 *     nwsim config dump <spec>
 *         Resolve any machine spec (preset+modifiers or .cfg file) and
 *         print its canonical config-file text. dump of a dump
 *         round-trips bit-identically.
 *
 *     nwsim config diff <a> <b>
 *         Field-level diff of two resolved machine specs.
 *
 *     nwsim config fields [--markdown]
 *         The full machine-parameter reference (name, type, range,
 *         default, doc); --markdown emits the docs/CONFIG.md table.
 *
 *     nwsim bench [--suite smoke|all] [--workloads a,b] [--configs ...]
 *                 [--warmup N] [--measure N] [--jobs N] [--json FILE]
 *                 [--no-uncached] [--no-sample] [--no-trace-compare]
 *                 [--sample-schedule P:W:M] [--no-progress]
 *                 [--compare OLD.json] [--threshold PCT]
 *         Measure host-side simulation speed (docs/PERF.md): run the
 *         workload × config grid with the decode caches on (default),
 *         with +nodecodecache, in sampled mode (docs/SAMPLING.md;
 *         effective KIPS = stream insts per wall second), and in
 *         sampled `+notrace` mode (the superblock-trace A/B), print
 *         per-variant KIPS, decode-cache hit rate, and the wall-clock
 *         speedup, and write BENCH_simspeed.json (--json overrides the
 *         path). With --compare, diff the headline speed metrics
 *         against a previously written document and exit nonzero if
 *         any variant regressed by more than --threshold percent
 *         (default 10). Exits nonzero if any job fails or the measured
 *         KIPS is zero.
 *
 *     nwsim --version
 *         Print the version, the trace-dispatch mechanism this binary
 *         was built with (direct-threaded | call-threaded), and the
 *         config-grammar version (docs/CONFIG.md).
 *
 * Options:
 *     --config SPEC     a full campaign config spec: base preset
 *                       (baseline | packing | packing-replay | issue8)
 *                       or a declarative config file (machine.cfg —
 *                       docs/CONFIG.md), plus +modifiers, e.g.
 *                       packing-replay+decode8 or
 *                       packing+sample=200000:2000:8000 for a
 *                       SMARTS-style sampled run with error bars
 *                       (docs/SAMPLING.md; --warmup + --measure become
 *                       the functional-stream budget). Default:
 *                       baseline — same grammar as nwsweep, so a
 *                       reproducer bundle's replay line pastes
 *                       straight into nwsim
 *     --decode8         deprecated alias for +decode8 (Section 5.4)
 *     --perfect-bp      deprecated alias for +perfect
 *     --early-out-mult  deprecated alias for +earlyout
 *     --warmup N        fast-mode warmup instructions (default 50000;
 *                       ignored for .s files, which run to completion)
 *     --measure N       measured instructions (default 400000)
 *     --trace           print a per-event pipeline trace (small runs!)
 *     --csv             machine-readable stats (key,value lines)
 *     --check           run under the lockstep cosim oracle and the
 *                       invariant checker (docs/CHECKING.md); print a
 *                       first-divergence report on any mismatch
 *
 * Exit status (docs/ROBUSTNESS.md): 0 ok; 2 usage; 3 bad input
 * (unknown workload/config, malformed assembly); 4 check divergence;
 * 7 internal simulator error (panic, deadlock watchdog); 9 interrupted
 * (SIGTERM during a --ckpt-every run — state checkpointed, rerun the
 * same command to resume; docs/CHECKPOINT.md).
 */

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "asm/textasm.hh"
#include "cfg/fields.hh"
#include "cfg/loader.hh"
#include "cfg/wgen.hh"
#include "check/session.hh"
#include "ckpt/run.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "driver/runner.hh"
#include "driver/table.hh"
#include "exp/bench.hh"
#include "exp/campaign.hh"
#include "exp/configs.hh"
#include "func/superblock.hh"
#include "sample/controller.hh"
#include "workloads/kernels.hh"

using namespace nwsim;

namespace
{

int
usage()
{
    std::cerr
        << "usage: nwsim list\n"
        << "       nwsim run <workload|file.s|wgen:spec> [--config SPEC]\n"
        << "                 [--warmup N] [--measure N] [--ckpt-every N]\n"
        << "                 [--ckpt-dir DIR] [--trace] [--csv]\n"
        << "                 [--check]\n"
        << "       nwsim config list | dump <spec> | diff <a> <b>\n"
        << "                 | fields [--markdown]\n"
        << "       nwsim bench [--suite smoke|all] [--workloads a,b]\n"
        << "                 [--configs s1,s2] [--warmup N] [--measure N]\n"
        << "                 [--jobs N] [--json FILE] [--no-uncached]\n"
        << "                 [--no-sample] [--no-trace-compare]\n"
        << "                 [--sample-schedule P:W:M] [--no-progress]\n"
        << "                 [--compare OLD.json] [--threshold PCT]\n"
        << "       nwsim --version\n";
    return exitcode::Usage;
}

int
listWorkloads()
{
    Table t({"name", "suite", "description"});
    for (const Workload &w : allWorkloads())
        t.addRow({w.name, w.suite, w.description});
    t.print();
    return 0;
}

bool
isAsmFile(const std::string &name)
{
    return name.size() > 2 && name.substr(name.size() - 2) == ".s";
}

Program
loadProgram(const std::string &target)
{
    if (!isAsmFile(target))
        // Builtin names and generated `wgen:` specs (docs/CONFIG.md).
        return cfg::workloadProgram(target);
    std::ifstream in(target);
    if (!in)
        NWSIM_FATAL("cannot open ", target);
    std::ostringstream src;
    src << in.rdbuf();
    return assembleText(src.str());
}

const char *
fieldTypeName(cfg::FieldType t)
{
    switch (t) {
    case cfg::FieldType::UInt: return "uint";
    case cfg::FieldType::Bool: return "bool";
    case cfg::FieldType::F64: return "float";
    }
    return "?";
}

std::string
fieldRangeText(const cfg::FieldDesc &f)
{
    if (f.type == cfg::FieldType::Bool)
        return "true|false";
    const auto num = [](double v) {
        if (v == static_cast<double>(static_cast<u64>(v)))
            return std::to_string(static_cast<u64>(v));
        std::ostringstream os;
        os << v;
        return os.str();
    };
    return num(f.minValue) + ".." + num(f.maxValue);
}

int
configMain(int argc, char **argv)
{
    const std::string sub = argc >= 3 ? argv[2] : "";

    if (sub == "list") {
        std::cout << "base presets:\n";
        for (const cfg::PresetDef &p : cfg::presetRegistry())
            std::cout << "  " << p.name << "  -- " << p.doc << "\n";
        std::cout << "\n+modifiers:\n";
        for (const cfg::ModifierDef &m : cfg::modifierRegistry())
            std::cout << "  +" << m.display << "  -- " << m.doc << "\n";
        const std::vector<std::string> files =
            cfg::discoverConfigFiles();
        std::cout << "\nconfig files (configs/";
        if (const char *path = std::getenv("NWSIM_CONFIG_PATH"))
            std::cout << ", NWSIM_CONFIG_PATH=" << path;
        std::cout << "):\n";
        if (files.empty())
            std::cout << "  (none found)\n";
        for (const std::string &f : files)
            std::cout << "  " << f << "\n";
        std::cout << "\nspec grammar: " << cfg::specGrammarHelp() << "\n";
        return 0;
    }

    if (sub == "dump") {
        if (argc != 4)
            return usage();
        const cfg::MachineSpec spec = cfg::resolveMachineSpec(argv[3]);
        std::cout << cfg::canonicalMachineDump(spec);
        return 0;
    }

    if (sub == "diff") {
        if (argc != 5)
            return usage();
        const cfg::MachineSpec a = cfg::resolveMachineSpec(argv[3]);
        const cfg::MachineSpec b = cfg::resolveMachineSpec(argv[4]);
        const std::vector<cfg::FieldDiff> diffs =
            cfg::diffConfigs(a.config, b.config);
        size_t nrows = diffs.size();
        Table t({"field", a.spec, b.spec});
        for (const cfg::FieldDiff &d : diffs)
            t.addRow({d.field->name, d.a, d.b});
        const bool sampleDiffers =
            cfg::formatSampleSpec(a.sample) !=
            cfg::formatSampleSpec(b.sample);
        if (sampleDiffers) {
            t.addRow({"schedule.sample",
                      a.sample.enabled ? cfg::formatSampleSpec(a.sample)
                                       : "(off)",
                      b.sample.enabled ? cfg::formatSampleSpec(b.sample)
                                       : "(off)"});
            ++nrows;
        }
        if (a.ckptEvery != b.ckptEvery) {
            t.addRow({"schedule.ckpt", std::to_string(a.ckptEvery),
                      std::to_string(b.ckptEvery)});
            ++nrows;
        }
        if (nrows == 0) {
            std::cout << "specs are identical (" << a.spec << " == "
                      << b.spec << ")\n";
            return 0;
        }
        t.print();
        return 1;   // grep-style: differences found
    }

    if (sub == "fields") {
        const bool markdown = argc >= 4 &&
                              std::string(argv[3]) == "--markdown";
        const CoreConfig defaults{};
        if (markdown) {
            std::cout << "| field | type | range | default | "
                         "description |\n"
                      << "|---|---|---|---|---|\n";
            for (const cfg::FieldDesc &f : cfg::coreConfigFields()) {
                std::cout << "| `" << f.name << "` | "
                          << fieldTypeName(f.type) << " | `"
                          << fieldRangeText(f) << "` | `"
                          << f.valueText(defaults) << "` | " << f.doc
                          << " |\n";
            }
            std::cout << "\n| wgen knob | range | default | "
                         "description |\n"
                      << "|---|---|---|---|\n";
            const cfg::WgenParams wdef{};
            for (const cfg::WgenKnob &k : cfg::wgenKnobs()) {
                std::cout << "| `" << k.name << "` | `"
                          << static_cast<u64>(k.minValue) << ".."
                          << static_cast<u64>(k.maxValue) << "` | `"
                          << static_cast<u64>(k.get(wdef)) << "` | "
                          << k.doc << " |\n";
            }
            return 0;
        }
        Table t({"field", "type", "range", "default", "description"});
        for (const cfg::FieldDesc &f : cfg::coreConfigFields()) {
            t.addRow({f.name, fieldTypeName(f.type), fieldRangeText(f),
                      f.valueText(defaults), f.doc});
        }
        t.print();
        return 0;
    }

    return usage();
}

void
report(const RunResult &r, bool csv)
{
    if (csv) {
        std::cout << "workload," << r.workload << "\n"
                  << "config," << r.configName << "\n"
                  << "committed," << r.core.committed << "\n"
                  << "cycles," << r.core.cycles << "\n"
                  << "ipc," << r.ipc() << "\n"
                  << "mispredict_squashes," << r.core.mispredictSquashes
                  << "\n"
                  << "cond_mispredict_rate,"
                  << r.bpred.condMispredictRate() << "\n"
                  << "l1d_miss_rate," << r.l1dMissRate << "\n"
                  << "l1i_miss_rate," << r.l1iMissRate << "\n"
                  << "narrow16_pct," << r.profiler.narrow16TotalPercent()
                  << "\n"
                  << "narrow33_pct," << r.profiler.narrow33TotalPercent()
                  << "\n"
                  << "width_fluctuation_pct,"
                  << r.profiler.fluctuationPercent() << "\n"
                  << "power_baseline_mw," << r.baselinePowerPerCycle()
                  << "\n"
                  << "power_gated_mw," << r.optimizedPowerPerCycle()
                  << "\n"
                  << "power_reduction_pct,"
                  << r.gating.reductionPercent() << "\n"
                  << "packed_groups," << r.packing.packedGroups << "\n"
                  << "packed_insts," << r.packing.packedInsts << "\n"
                  << "replay_traps," << r.packing.replayTraps << "\n";
        if (r.sample.sampled) {
            std::cout << "sample_intervals," << r.sample.intervals
                      << "\n"
                      << "sample_stream_insts," << r.sample.streamInsts
                      << "\n";
            for (size_t m = 0; m < SampleSummary::kNumMetrics; ++m) {
                const char *name = sample::sampleMetricName(
                    static_cast<sample::SampleMetric>(m));
                const SampleSummary::Estimate &e = r.sample.metrics[m];
                std::cout << name << "_mean," << e.mean << "\n"
                          << name << "_cov," << e.cov << "\n"
                          << name << "_ci95," << e.ci95 << "\n";
            }
        }
        return;
    }
    std::cout << "== " << r.workload << " on " << r.configName << " ==\n"
              << "committed:      " << r.core.committed << " (after "
              << r.warmupCommitted << " warmup)\n"
              << "cycles:         " << r.core.cycles << "\n"
              << "IPC:            " << Table::num(r.ipc(), 3) << "\n"
              << "branch MPKI-ish: "
              << Table::num(100.0 * r.bpred.condMispredictRate(), 2)
              << "% of conditionals\n"
              << "L1D miss rate:  "
              << Table::num(100.0 * r.l1dMissRate, 2) << "%\n"
              << "narrow ops:     "
              << Table::num(r.profiler.narrow16TotalPercent(), 1)
              << "% at 16 bits, "
              << Table::num(r.profiler.narrow33TotalPercent(), 1)
              << "% at 33 bits\n"
              << "int-unit power: "
              << Table::num(r.baselinePowerPerCycle(), 1) << " -> "
              << Table::num(r.optimizedPowerPerCycle(), 1)
              << " mW/cycle with gating ("
              << Table::num(r.gating.reductionPercent(), 1)
              << "% reduction)\n"
              << "packing:        " << r.packing.packedInsts
              << " insts in " << r.packing.packedGroups << " groups, "
              << r.packing.replayTraps << " replay traps\n";
    if (r.sample.sampled) {
        const auto &ipc = r.sample.metrics[static_cast<size_t>(
            sample::SampleMetric::Ipc)];
        std::cout << "sampled:        " << r.sample.intervals
                  << " intervals over " << r.sample.streamInsts
                  << " stream insts; IPC " << Table::num(ipc.mean, 3)
                  << " ± " << Table::num(ipc.ci95, 3) << " (95% CI, CoV "
                  << Table::num(100.0 * ipc.cov, 1) << "%)\n";
    }
}

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : csv) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

int
benchMain(int argc, char **argv)
{
    exp::BenchOptions bopts;
    bopts.runOpts = resolveRunOptions();
    bool progress = true;
    bool window_overridden = false;
    std::string suite = "all";
    std::string json_path = "BENCH_simspeed.json";
    std::string compare_path;
    double threshold_pct = 10.0;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(exitcode::Usage);
            }
            return argv[++i];
        };
        if (arg == "--suite")
            suite = next();
        else if (arg == "--workloads")
            bopts.workloads = splitList(next());
        else if (arg == "--configs")
            bopts.configs = splitList(next());
        else if (arg == "--warmup") {
            bopts.runOpts.warmupInsts =
                std::strtoull(next().c_str(), nullptr, 0);
            window_overridden = true;
        } else if (arg == "--measure") {
            bopts.runOpts.measureInsts =
                std::strtoull(next().c_str(), nullptr, 0);
            window_overridden = true;
        } else if (arg == "--jobs")
            bopts.jobs = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 0));
        else if (arg == "--json")
            json_path = next();
        else if (arg == "--no-uncached")
            bopts.compareUncached = false;
        else if (arg == "--no-sample")
            bopts.compareSampled = false;
        else if (arg == "--no-trace-compare")
            bopts.compareNoTrace = false;
        else if (arg == "--sample-schedule")
            bopts.sampleModifier = "sample=" + next();
        else if (arg == "--compare")
            compare_path = next();
        else if (arg == "--threshold")
            threshold_pct = std::strtod(next().c_str(), nullptr);
        else if (arg == "--no-progress")
            progress = false;
        else
            return usage();
    }

    if (suite == "smoke") {
        // The ctest `perf` entry: a 2x2 grid with short windows, enough
        // to sanity-check the measurement plumbing in seconds.
        if (bopts.workloads.empty())
            bopts.workloads = {"perl", "gsm-decode"};
        if (bopts.configs.empty())
            bopts.configs = {"baseline", "packing-replay"};
        if (!window_overridden) {
            bopts.runOpts.warmupInsts = 2000;
            bopts.runOpts.measureInsts = 10000;
        }
    } else if (suite != "all") {
        return usage();
    }
    if (progress)
        bopts.progress = &std::cerr;

    // Read the reference before spending minutes measuring, so a bad
    // path fails fast.
    std::string old_doc;
    if (!compare_path.empty()) {
        std::ifstream in(compare_path);
        if (!in)
            NWSIM_FATAL("cannot read --compare file ", compare_path);
        std::ostringstream buf;
        buf << in.rdbuf();
        old_doc = buf.str();
    }

    const exp::BenchReport report = exp::runSpeedBench(bopts);
    const exp::BenchAggregate ev = exp::benchAggregate(report.event);

    std::cout << "decode-cached (default): "
              << Table::num(ev.seconds, 2) << "s for "
              << Table::num(ev.committedKinsts, 0) << " kinsts = "
              << Table::num(ev.kips(), 0) << " KIPS ("
              << Table::num(ev.cyclesPerSecond() / 1e6, 2)
              << " Mcycles/s, "
              << Table::num(100.0 * ev.decode.hitRate(), 1)
              << "% decode hits)\n";
    if (report.options.compareUncached) {
        const exp::BenchAggregate un =
            exp::benchAggregate(report.uncached);
        std::cout << "uncached (+nodecodecache): "
                  << Table::num(un.seconds, 2) << "s for "
                  << Table::num(un.committedKinsts, 0) << " kinsts = "
                  << Table::num(un.kips(), 0) << " KIPS ("
                  << Table::num(un.cyclesPerSecond() / 1e6, 2)
                  << " Mcycles/s)\n"
                  << "speedup (wall-clock):   "
                  << Table::num(report.speedup(), 2) << "x\n";
    }
    if (report.options.compareSampled) {
        const exp::BenchAggregate sm =
            exp::benchAggregate(report.sampled);
        std::cout << "sampled mode (+" << report.options.sampleModifier
                  << "): " << Table::num(sm.seconds, 2) << "s covering "
                  << Table::num(sm.streamKinsts, 0)
                  << " stream kinsts = "
                  << Table::num(sm.effectiveKips(), 0)
                  << " effective KIPS (" << Table::num(sm.kips(), 0)
                  << " detailed KIPS)\n";
    }
    if (report.compareNoTrace()) {
        const exp::BenchAggregate nt =
            exp::benchAggregate(report.sampledNoTrace);
        std::cout << "sampled +notrace:       "
                  << Table::num(nt.seconds, 2) << "s covering "
                  << Table::num(nt.streamKinsts, 0)
                  << " stream kinsts = "
                  << Table::num(nt.effectiveKips(), 0)
                  << " effective KIPS\n"
                  << "trace speedup (effective KIPS, "
                  << sbDispatchKind() << "): "
                  << Table::num(report.traceSpeedupEffective(), 2)
                  << "x\n";
    }

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out)
            NWSIM_FATAL("cannot write ", json_path);
        exp::writeBenchJson(out, report);
        std::cerr << "wrote " << json_path << "\n";
    }

    if (!report.ok()) {
        std::cerr << "nwsim bench: job failures (see above)\n";
        return 1;
    }
    if (ev.kips() <= 0.0) {
        std::cerr << "nwsim bench: measured zero KIPS — timing broken\n";
        return 1;
    }

    if (!old_doc.empty()) {
        const std::vector<exp::BenchDelta> deltas =
            exp::compareBenchJson(old_doc, report);
        if (deltas.empty()) {
            std::cerr << "nwsim bench: --compare found no shared "
                         "metrics in " << compare_path << "\n";
            return 1;
        }
        size_t regressions = 0;
        std::cout << "compare vs " << compare_path << " (threshold "
                  << Table::num(threshold_pct, 1) << "%):\n";
        for (const exp::BenchDelta &d : deltas) {
            const bool bad = d.regressed(threshold_pct);
            regressions += bad;
            std::cout << "  " << d.variant << " " << d.metric << ": "
                      << Table::num(d.oldValue, 0) << " -> "
                      << Table::num(d.newValue, 0) << " ("
                      << (d.deltaPercent() >= 0 ? "+" : "")
                      << Table::num(d.deltaPercent(), 1) << "%)"
                      << (bad ? "  REGRESSION" : "") << "\n";
        }
        if (regressions) {
            std::cerr << "nwsim bench: " << regressions
                      << " metric(s) regressed beyond "
                      << Table::num(threshold_pct, 1) << "%\n";
            return 1;
        }
    }
    return 0;
}

int
runMain(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "--version" || cmd == "version") {
        std::cout << "nwsim " << NWSIM_VERSION << " ("
                  << sbDispatchKind() << " dispatch, config grammar v"
                  << cfg::kGrammarVersion << ")\n";
        return 0;
    }
    if (cmd == "list")
        return listWorkloads();
    if (cmd == "config")
        return configMain(argc, argv);
    if (cmd == "bench")
        return benchMain(argc, argv);
    if (cmd != "run" || argc < 3)
        return usage();

    const std::string target = argv[2];
    std::string config_name = "baseline";
    std::string ckpt_dir;
    bool decode8 = false, perfect = false, early_out = false;
    bool trace = false, csv = false, check = false;
    RunOptions opts = resolveRunOptions();
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(exitcode::Usage);
            }
            return argv[++i];
        };
        // The legacy machine flags are deprecation shims: they still
        // work, but the spec-grammar modifiers are the one true
        // spelling (docs/CONFIG.md "Deprecations").
        auto deprecated = [&](const char *mod) {
            std::cerr << "nwsim: warning: " << arg
                      << " is deprecated; use --config SPEC" << mod
                      << " instead\n";
        };
        if (arg == "--config")
            config_name = next();
        else if (arg == "--decode8") {
            deprecated("+decode8");
            decode8 = true;
        } else if (arg == "--perfect-bp") {
            deprecated("+perfect");
            perfect = true;
        } else if (arg == "--early-out-mult") {
            deprecated("+earlyout");
            early_out = true;
        } else if (arg == "--warmup")
            opts.warmupInsts = std::strtoull(next().c_str(), nullptr, 0);
        else if (arg == "--measure")
            opts.measureInsts = std::strtoull(next().c_str(), nullptr, 0);
        else if (arg == "--ckpt-every")
            opts.ckptEveryInsts =
                std::strtoull(next().c_str(), nullptr, 0);
        else if (arg == "--ckpt-dir")
            ckpt_dir = next();
        else if (arg == "--trace")
            trace = true;
        else if (arg == "--csv")
            csv = true;
        else if (arg == "--check")
            check = true;
        else
            return usage();
    }

    // --config accepts the campaign spec grammar; the legacy flags
    // compose onto it as the equivalent modifiers.
    std::string spec = config_name;
    if (decode8)
        spec += "+decode8";
    if (perfect)
        spec += "+perfect";
    if (early_out)
        spec += "+earlyout";
    const CoreConfig cfg = exp::configBySpec(spec);

    const Program prog = loadProgram(target);

    if (isAsmFile(target) || trace) {
        // Run to completion (assembly files are usually short); with
        // --trace, stream every pipeline event.
        SparseMemory mem;
        prog.load(mem);
        OutOfOrderCore core(cfg, mem, prog.entry);
        if (trace) {
            core.setTraceHook([](const TraceEvent &ev) {
                std::cout << formatTraceEvent(ev) << "\n";
            });
        }
        std::unique_ptr<CheckSession> session;
        if (check)
            session = std::make_unique<CheckSession>(core, prog);
        core.run(opts.measureInsts);
        if (session) {
            if (core.done() && !session->failed())
                session->verifyFinalState();
            if (session->failed()) {
                std::cerr << "CHECK FAILED on " << target << " ("
                          << config_name << "):\n"
                          << session->report();
                return exitcode::CheckDivergence;
            }
            std::cerr << "check: " << session->oracle()->commitsChecked()
                      << " commits verified in lockstep, invariants "
                         "clean\n";
        }
        report(collectRunResult(core, target, config_name), csv);
        return 0;
    }

    if (check) {
        const CheckedRunOutcome out =
            runCheckedProgram(prog, cfg, opts, target, config_name);
        if (!out.ok) {
            std::cerr << "CHECK FAILED on " << target << " ("
                      << config_name << "):\n"
                      << out.report;
            return exitcode::CheckDivergence;
        }
        std::cerr << "check: " << out.commitsChecked
                  << " commits verified in lockstep, invariants clean\n";
        report(out.result, csv);
        return 0;
    }

    opts.sample = exp::sampleBySpec(spec);
    if (const u64 every = exp::ckptBySpec(spec))
        opts.ckptEveryInsts = every;

    if (opts.ckptEveryInsts > 0) {
        // Killable run: SIGTERM requests a graceful stop, the runner
        // checkpoints at the next safe point, and a rerun of the same
        // command resumes from it (docs/CHECKPOINT.md).
        struct sigaction sa = {};
        sa.sa_handler = [](int) { ckpt::requestInterrupt(); };
        sa.sa_flags = SA_RESTART;
        ::sigaction(SIGTERM, &sa, nullptr);

        ckpt::CkptRunPolicy policy;
        if (!ckpt_dir.empty()) {
            std::filesystem::create_directories(ckpt_dir);
            policy.path = exp::ckptPathFor(ckpt_dir, target + "/" + spec);
        }
        policy.workload = target;
        policy.configSpec = spec;
        policy.everyInsts = opts.ckptEveryInsts;
        report(ckpt::runCheckpointedProgram(prog, cfg, opts, target,
                                            config_name, policy),
               csv);
        return 0;
    }

    if (opts.sample.enabled) {
        report(sample::runSampledProgram(prog, cfg, opts, target,
                                         config_name),
               csv);
        return 0;
    }

    report(runProgram(prog, cfg, opts, target, config_name), csv);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runMain(argc, argv);
    } catch (const InterruptedError &e) {
        std::cerr << "nwsim: interrupted; rerun the same command to "
                     "resume from "
                  << (e.ckptPath().empty() ? "scratch (no --ckpt-dir)"
                                           : e.ckptPath())
                  << "\n";
        return exitcode::Interrupted;
    } catch (const SimError &e) {
        std::cerr << "nwsim: " << errorKindName(e.kind()) << ": "
                  << e.what() << "\n";
        return e.exitCode();
    } catch (const std::exception &e) {
        std::cerr << "nwsim: internal error: " << e.what() << "\n";
        return exitcode::Internal;
    }
}
