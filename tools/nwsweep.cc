/**
 * @file
 * nwsweep — run the paper's whole evaluation grid as one parallel
 * experiment campaign.
 *
 *     nwsweep [--suite spec|media|all|smoke] [--workloads a,b,c]
 *             [--configs spec,spec,...] [--jobs N]
 *             [--json FILE] [--csv FILE] [--warmup N] [--measure N]
 *             [--no-progress] [--list-configs]
 *
 * Defaults: --suite all, --configs baseline,packing,packing-replay,issue8
 * (the Figure 10/11 grid), --jobs hardware_concurrency (or NWSIM_JOBS).
 * Config specs compose modifiers: e.g. packing-replay+decode8+perfect.
 * The --suite smoke preset is a tiny 2x2 grid with short windows, used
 * by ctest to exercise the parallel path.
 *
 * Exit status: 0 if every job succeeded, 1 if any failed, 2 on usage
 * errors.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "exp/campaign.hh"
#include "exp/configs.hh"
#include "workloads/kernels.hh"

using namespace nwsim;

namespace
{

int
usage()
{
    std::cerr
        << "usage: nwsweep [--suite spec|media|all|smoke]\n"
        << "               [--workloads a,b,c] [--configs s1,s2,...]\n"
        << "               [--jobs N] [--json FILE] [--csv FILE]\n"
        << "               [--warmup N] [--measure N]\n"
        << "               [--no-progress] [--list-configs]\n";
    return 2;
}

int
listConfigs()
{
    std::cout << "base configs:\n";
    for (const exp::NamedConfig &c : exp::baseConfigs())
        std::cout << "  " << c.name << "  — " << c.description << "\n";
    std::cout << "modifiers (append with +):\n";
    for (const exp::NamedConfig &m : exp::configModifiers())
        std::cout << "  +" << m.name << "  — " << m.description << "\n";
    std::cout << "example: packing-replay+decode8+perfect\n";
    return 0;
}

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : csv) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::vector<std::string>
suiteNames(const std::string &suite)
{
    std::vector<std::string> names;
    for (const Workload &w : allWorkloads()) {
        if (suite == "all" || w.suite == suite)
            names.push_back(w.name);
    }
    return names;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string suite = "all";
    std::vector<std::string> workloads;
    std::vector<std::string> configs;
    std::string json_path, csv_path;
    unsigned jobs = 0;
    bool progress = true;
    RunOptions opts = resolveRunOptions();
    bool window_overridden = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--suite")
            suite = next();
        else if (arg == "--workloads")
            workloads = splitList(next());
        else if (arg == "--configs")
            configs = splitList(next());
        else if (arg == "--jobs")
            jobs = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 0));
        else if (arg == "--json")
            json_path = next();
        else if (arg == "--csv")
            csv_path = next();
        else if (arg == "--warmup") {
            opts.warmupInsts = std::strtoull(next().c_str(), nullptr, 0);
            window_overridden = true;
        } else if (arg == "--measure") {
            opts.measureInsts = std::strtoull(next().c_str(), nullptr, 0);
            window_overridden = true;
        } else if (arg == "--no-progress")
            progress = false;
        else if (arg == "--list-configs")
            return listConfigs();
        else
            return usage();
    }

    if (suite == "smoke") {
        // Tiny grid with short windows: exercises the parallel campaign
        // path in seconds (used by the ctest `campaign` label).
        if (workloads.empty())
            workloads = {"perl", "gsm-decode"};
        if (configs.empty())
            configs = {"baseline", "packing-replay"};
        if (!window_overridden) {
            opts.warmupInsts = 2000;
            opts.measureInsts = 10000;
        }
    } else {
        if (workloads.empty()) {
            if (suite != "spec" && suite != "media" && suite != "all")
                return usage();
            workloads = suiteNames(suite);
        }
        if (configs.empty())
            configs = {"baseline", "packing", "packing-replay",
                       "issue8"};
    }
    for (const std::string &spec : configs) {
        if (!exp::isValidConfigSpec(spec))
            NWSIM_FATAL("unknown config spec \"", spec,
                        "\" (see nwsweep --list-configs)");
    }

    const exp::Campaign campaign =
        exp::Campaign::grid(workloads, configs, opts);

    exp::CampaignOptions copts;
    copts.jobs = jobs;
    copts.progress = progress ? &std::cerr : nullptr;

    std::cerr << "nwsweep: " << campaign.jobs().size() << " jobs ("
              << workloads.size() << " workloads x " << configs.size()
              << " configs), warmup " << opts.warmupInsts << ", measure "
              << opts.measureInsts << "\n";

    const exp::ResultSet results = campaign.run(copts);

    results.toTable().print();
    std::cout << "total simulated job time "
              << Table::num(results.totalJobSeconds(), 1) << "s on "
              << results.workersUsed() << " worker(s)";
    if (results.failedCount())
        std::cout << "; " << results.failedCount() << " job(s) FAILED";
    std::cout << "\n";

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out)
            NWSIM_FATAL("cannot write ", json_path);
        results.writeJson(out);
        std::cerr << "wrote " << json_path << "\n";
    }
    if (!csv_path.empty()) {
        std::ofstream out(csv_path);
        if (!out)
            NWSIM_FATAL("cannot write ", csv_path);
        results.writeCsv(out);
        std::cerr << "wrote " << csv_path << "\n";
    }

    return results.allOk() ? 0 : 1;
}
