/**
 * @file
 * nwsweep — run the paper's whole evaluation grid as one parallel
 * experiment campaign.
 *
 *     nwsweep [--suite spec|media|all|smoke] [--workloads a,b,c]
 *             [--configs spec,spec,...] [--sweep FILE.cfg] [--jobs N]
 *             [--json FILE] [--csv FILE] [--warmup N] [--measure N]
 *             [--executor auto|thread|fork|remote]
 *             [--isolate] [--timeout SECS] [--retries N]
 *             [--backoff SECS] [--bundle-dir DIR]
 *             [--rlimit-mem MB] [--rlimit-cpu SECS]
 *             [--journal FILE] [--resume] [--json-no-timing]
 *             [--workers host:port[,host:port...]]
 *             [--spawn-workers N] [--worker-loss SECS]
 *             [--inject-fault hang|crash|oom[,...]]
 *             [--no-progress] [--list-configs]
 *     nwsweep serve [--listen PORT] [--bind HOST] [--jobs N] [--once]
 *
 * Executors (docs/CAMPAIGN.md "Executors"): the campaign dispatches to
 * a pluggable backend — in-process threads (fastest), fork-per-job
 * (crash/hang/rlimit isolation), or remote workers over TCP. --executor
 * auto picks remote when --workers is set, fork under --isolate, and
 * threads otherwise. Per-job statistics are bit-identical across all
 * three (--json-no-timing documents are byte-identical).
 *
 * Distributed sweeps: start `nwsweep serve --listen 7070` on each
 * worker host, then drive with --workers hostA:7070,hostB:7070. Each
 * worker runs jobs through the same fork-isolated retry loop as
 * --isolate, honoring the driver's --timeout/--retries/--rlimit-*
 * policy. --spawn-workers N forks N loopback worker daemons for a
 * one-command distributed run (used by the `dist` ctest label).
 * Combined with --journal, a killed driver resumes with --resume and a
 * killed worker only costs its in-flight jobs' compute.
 *
 * Defaults: --suite all, --configs baseline,packing,packing-replay,issue8
 * (the Figure 10/11 grid), --jobs hardware_concurrency (or NWSIM_JOBS).
 * Config specs compose modifiers: e.g. packing-replay+decode8+perfect;
 * a spec may also name a declarative `.cfg` machine file, and workloads
 * may be generated `wgen:` specs (docs/CONFIG.md). --sweep FILE.cfg
 * loads a whole machine × workload product from a config file's [sweep]
 * section — including `machines[0:999]` / `workloads[0:999]` array
 * expansions for large generated scenario grids — composing with
 * --shard, --journal/--resume, and every executor. The --suite smoke
 * preset is a tiny 2x2 grid with short windows, used by ctest to
 * exercise the parallel path.
 *
 * Robustness (docs/ROBUSTNESS.md):
 *   --isolate      fork one child per job: crashes/hangs become recorded
 *                  `crashed(SIG...)` / `timeout` outcomes, siblings run on
 *   --timeout S    per-job wall-clock watchdog (implies --isolate)
 *   --journal F    append-only crash-safe record of terminal outcomes
 *   --resume       skip jobs already journaled; merged results are
 *                  bit-identical to an uninterrupted run (--json-no-timing)
 *   --bundle-dir D reproducer bundles (MANIFEST + flight-recorder events)
 *   --inject-fault self-test: adds deliberately faulting jobs and checks
 *                  each is recorded with the right classification while
 *                  the rest of the grid completes (implies --isolate)
 *
 * Exit status: 0 if every job succeeded (and, with --inject-fault, the
 * drill verified); 1 if any job faulted or the drill failed; 2 on usage
 * errors; 3 on bad input (unknown workload/config, unwritable file);
 * 7 on an internal error; 8 when the campaign infrastructure hits a
 * resource limit (e.g. every remote worker was lost mid-sweep).
 */

#include <csignal>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cfg/loader.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "exp/campaign.hh"
#include "exp/configs.hh"
#include "exp/remote.hh"
#include "exp/shard.hh"
#include "workloads/kernels.hh"

using namespace nwsim;

namespace
{

int
usage()
{
    std::cerr
        << "usage: nwsweep [--suite spec|media|all|smoke]\n"
        << "               [--workloads a,b,c] [--configs s1,s2,...]\n"
        << "               [--sweep FILE.cfg]\n"
        << "               [--jobs N] [--json FILE] [--csv FILE]\n"
        << "               [--warmup N] [--measure N]\n"
        << "               [--executor auto|thread|fork|remote]\n"
        << "               [--isolate] [--timeout SECS] [--retries N]\n"
        << "               [--backoff SECS] [--bundle-dir DIR]\n"
        << "               [--rlimit-mem MB] [--rlimit-cpu SECS]\n"
        << "               [--journal FILE] [--resume]\n"
        << "               [--ckpt-dir DIR] [--ckpt-every N]\n"
        << "               [--shard K] [--json-no-timing]\n"
        << "               [--workers host:port[,host:port...]]\n"
        << "               [--spawn-workers N] [--window N]\n"
        << "               [--worker-loss SECS]\n"
        << "               [--inject-fault hang|crash|oom[,...]]\n"
        << "               [--no-progress] [--list-configs]\n"
        << "       nwsweep serve [--listen PORT] [--bind HOST]\n"
        << "                     [--jobs N] [--once] [--ckpt-dir DIR]\n";
    return exitcode::Usage;
}

/** `nwsweep serve`: run a worker daemon until killed (or --once). */
int
serveMain(int argc, char **argv)
{
    exp::ServeOptions sopts;
    sopts.log = &std::cerr;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(exitcode::Usage);
            }
            return argv[++i];
        };
        if (arg == "--listen")
            sopts.port = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 0));
        else if (arg == "--bind")
            sopts.bindHost = next();
        else if (arg == "--jobs")
            sopts.jobs = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 0));
        else if (arg == "--once")
            sopts.once = true;
        else if (arg == "--ckpt-dir") {
            sopts.ckptDir = next();
            std::filesystem::create_directories(sopts.ckptDir);
        } else
            return usage();
    }
    exp::serveWorker(sopts);
    return 0;
}

exp::ExecutorKind
parseExecutorKind(const std::string &name)
{
    if (name == "auto")
        return exp::ExecutorKind::Auto;
    if (name == "thread")
        return exp::ExecutorKind::Thread;
    if (name == "fork")
        return exp::ExecutorKind::Fork;
    if (name == "remote")
        return exp::ExecutorKind::Remote;
    NWSIM_FATAL("unknown executor \"", name,
                "\" (auto|thread|fork|remote)");
}

int
listConfigs()
{
    std::cout << "base configs:\n";
    for (const exp::NamedConfig &c : exp::baseConfigs())
        std::cout << "  " << c.name << "  — " << c.description << "\n";
    std::cout << "modifiers (append with +):\n";
    for (const exp::NamedConfig &m : exp::configModifiers())
        std::cout << "  +" << m.name << "  — " << m.description << "\n";
    const std::vector<std::string> files = cfg::discoverConfigFiles();
    if (!files.empty()) {
        std::cout << "config files (usable as base specs):\n";
        for (const std::string &f : files)
            std::cout << "  " << f << "\n";
    }
    std::cout << "example: packing-replay+decode8+perfect\n"
              << "         configs/baseline.cfg+sample=200000:2000:8000\n";
    return 0;
}

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : csv) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::vector<std::string>
suiteNames(const std::string &suite)
{
    std::vector<std::string> names;
    for (const Workload &w : allWorkloads()) {
        if (suite == "all" || w.suite == suite)
            names.push_back(w.name);
    }
    return names;
}

/**
 * A deliberately faulting job for the --inject-fault drill: the runner
 * misbehaves in the requested way, so the isolation/watchdog machinery
 * gets exercised on demand instead of waiting for a real bug.
 */
exp::SimJob
faultJob(const std::string &kind)
{
    exp::SimJob job;
    job.workload = "inject-" + kind;
    job.configSpec = "fault";
    if (kind == "hang") {
        job.runner = [](const exp::SimJob &) -> RunResult {
            for (;;)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(100));
        };
    } else if (kind == "crash") {
        job.runner = [](const exp::SimJob &) -> RunResult {
            std::raise(SIGSEGV);
            return {};
        };
    } else if (kind == "oom") {
        job.runner = [](const exp::SimJob &) -> RunResult {
            // Stands in for a real allocation failure; classified (and
            // retried) as a resource-limit fault.
            throw std::bad_alloc();
        };
    } else {
        NWSIM_FATAL("unknown --inject-fault kind \"", kind,
                    "\" (hang|crash|oom)");
    }
    return job;
}

/** Check one drill outcome against its expected classification. */
bool
verifyFaultOutcome(const exp::JobOutcome &o, const std::string &kind,
                   const exp::CampaignOptions &copts)
{
    auto fail = [&](const std::string &why) {
        std::cerr << "drill: " << o.label() << ": " << why << " (got "
                  << o.statusText() << ")\n";
        return false;
    };
    if (kind == "hang") {
        if (o.status != exp::JobStatus::Timeout)
            return fail("expected a timeout record");
    } else if (kind == "crash") {
        if (o.status != exp::JobStatus::Crashed ||
            o.termSignal != SIGSEGV) {
            return fail("expected crashed(SIGSEGV)");
        }
        if (!copts.bundleDir.empty()) {
            if (o.bundlePath.empty() ||
                !std::filesystem::exists(o.bundlePath +
                                         "/MANIFEST.txt")) {
                return fail("expected a reproducer bundle");
            }
        }
    } else if (kind == "oom") {
        if (o.status != exp::JobStatus::Failed ||
            o.errorKind != exp::FailKind::ResourceLimit)
            return fail("expected a resource-limit failure");
        if (o.attempts < 2 && copts.maxAttempts >= 2)
            return fail("expected a retried resource-limit failure");
    }
    std::cerr << "drill: " << o.label() << ": recorded as "
              << o.statusText() << " — ok\n";
    return true;
}

int
runMain(int argc, char **argv)
{
    std::string suite = "all";
    std::vector<std::string> workloads;
    std::vector<std::string> configs;
    std::vector<std::string> faults;
    std::string sweep_path;
    std::string json_path, csv_path;
    unsigned jobs = 0;
    unsigned spawn_workers = 0;
    u64 shard_count = 0;
    bool progress = true;
    bool json_timing = true;
    RunOptions opts = resolveRunOptions();
    bool window_overridden = false;
    exp::CampaignOptions copts;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(exitcode::Usage);
            }
            return argv[++i];
        };
        if (arg == "--suite")
            suite = next();
        else if (arg == "--workloads")
            workloads = splitList(next());
        else if (arg == "--configs")
            configs = splitList(next());
        else if (arg == "--sweep")
            sweep_path = next();
        else if (arg == "--jobs")
            jobs = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 0));
        else if (arg == "--json")
            json_path = next();
        else if (arg == "--csv")
            csv_path = next();
        else if (arg == "--warmup") {
            opts.warmupInsts = std::strtoull(next().c_str(), nullptr, 0);
            window_overridden = true;
        } else if (arg == "--measure") {
            opts.measureInsts = std::strtoull(next().c_str(), nullptr, 0);
            window_overridden = true;
        } else if (arg == "--isolate")
            copts.isolate = true;
        else if (arg == "--timeout") {
            copts.timeoutSeconds = std::strtod(next().c_str(), nullptr);
            copts.isolate = true;
        } else if (arg == "--retries")
            copts.maxAttempts = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 0));
        else if (arg == "--backoff")
            copts.backoffBaseSeconds =
                std::strtod(next().c_str(), nullptr);
        else if (arg == "--bundle-dir")
            copts.bundleDir = next();
        else if (arg == "--executor")
            copts.executor = parseExecutorKind(next());
        else if (arg == "--workers")
            copts.workerHosts = splitList(next());
        else if (arg == "--spawn-workers")
            spawn_workers = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 0));
        else if (arg == "--window")
            copts.remoteWindow = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 0));
        else if (arg == "--worker-loss")
            copts.workerLossSeconds =
                std::strtod(next().c_str(), nullptr);
        else if (arg == "--rlimit-mem")
            copts.rlimitMemMb = std::strtoull(next().c_str(), nullptr, 0);
        else if (arg == "--rlimit-cpu")
            copts.rlimitCpuSeconds =
                std::strtod(next().c_str(), nullptr);
        else if (arg == "--journal")
            copts.journal = next();
        else if (arg == "--resume")
            copts.resume = true;
        else if (arg == "--ckpt-dir")
            copts.ckptDir = next();
        else if (arg == "--ckpt-every")
            opts.ckptEveryInsts =
                std::strtoull(next().c_str(), nullptr, 0);
        else if (arg == "--shard")
            shard_count = std::strtoull(next().c_str(), nullptr, 0);
        else if (arg == "--json-no-timing")
            json_timing = false;
        else if (arg == "--inject-fault")
            faults = splitList(next());
        else if (arg.rfind("--inject-fault=", 0) == 0)
            faults = splitList(arg.substr(15));
        else if (arg == "--no-progress")
            progress = false;
        else if (arg == "--list-configs")
            return listConfigs();
        else
            return usage();
    }
    if (copts.resume && copts.journal.empty()) {
        std::cerr << "nwsweep: --resume requires --journal\n";
        return usage();
    }
    if (copts.rlimitMemMb > 0 || copts.rlimitCpuSeconds > 0) {
        // rlimits apply to isolated children; remote workers fork those
        // themselves, so only a plain local run needs the upgrade.
        copts.isolate = true;
    }
    if (!faults.empty()) {
        // Faulting jobs take the process down with them by design; the
        // drill only makes sense isolated, with a watchdog for the hang.
        copts.isolate = true;
        if (copts.timeoutSeconds <= 0)
            copts.timeoutSeconds = 5.0;
    }

    // A --sweep file provides the machine × workload product; explicit
    // --workloads / --configs override the corresponding axis.
    std::vector<cfg::SweepEntry> sweepWorkloads;
    if (!sweep_path.empty()) {
        const cfg::SweepPlan plan = cfg::loadSweepFile(sweep_path);
        if (configs.empty())
            configs = plan.machines;
        if (workloads.empty())
            sweepWorkloads = plan.workloads;
    }

    if (suite == "smoke") {
        // Tiny grid with short windows: exercises the parallel campaign
        // path in seconds (used by the ctest `campaign` label).
        if (workloads.empty() && sweepWorkloads.empty())
            workloads = {"perl", "gsm-decode"};
        if (configs.empty())
            configs = {"baseline", "packing-replay"};
        if (!window_overridden) {
            opts.warmupInsts = 2000;
            opts.measureInsts = 10000;
        }
    } else {
        if (workloads.empty() && sweepWorkloads.empty()) {
            if (suite != "spec" && suite != "media" && suite != "all")
                return usage();
            workloads = suiteNames(suite);
        }
        if (configs.empty())
            configs = {"baseline", "packing", "packing-replay",
                       "issue8"};
    }
    for (const std::string &spec : configs) {
        if (!exp::isValidConfigSpec(spec))
            NWSIM_FATAL("unknown config spec \"", spec,
                        "\" (see nwsweep --list-configs)");
    }

    if (!copts.ckptDir.empty())
        std::filesystem::create_directories(copts.ckptDir);

    const size_t workload_count = sweepWorkloads.empty()
                                      ? workloads.size()
                                      : sweepWorkloads.size();
    exp::Campaign campaign =
        sweepWorkloads.empty()
            ? exp::Campaign::grid(workloads, configs, opts)
            : exp::Campaign::sweepGrid(sweepWorkloads, configs, opts);
    for (const std::string &kind : faults)
        campaign.add(faultJob(kind));

    // --shard K: split each sampled job's schedule into K slices that
    // run as independent jobs and merge exactly afterwards.
    if (shard_count > 0) {
        exp::Campaign sharded;
        for (exp::SimJob &job :
             exp::planShardJobs(campaign.jobs(), shard_count))
            sharded.add(std::move(job));
        campaign = std::move(sharded);
    }

    copts.jobs = jobs;
    copts.progress = progress ? &std::cerr : nullptr;

    // --spawn-workers: fork a loopback worker fleet and drive it like
    // any other remote topology. The fleet object must outlive run().
    // Spawned workers inherit the driver's checkpoint directory (same
    // machine, same filesystem).
    std::unique_ptr<exp::LocalWorkerFleet> fleet;
    if (spawn_workers > 0) {
        fleet = std::make_unique<exp::LocalWorkerFleet>(
            spawn_workers, jobs, copts.ckptDir);
        copts.workerHosts = fleet->hosts();
    }

    std::cerr << "nwsweep: " << campaign.jobs().size() << " jobs ("
              << workload_count << " workloads x " << configs.size()
              << " configs), warmup " << opts.warmupInsts << ", measure "
              << opts.measureInsts;
    std::cerr << ", executor "
              << exp::executorKindName(exp::resolveExecutorKind(copts));
    if (!copts.workerHosts.empty())
        std::cerr << " (" << copts.workerHosts.size() << " workers)";
    if (copts.isolate) {
        std::cerr << ", isolated";
        if (copts.timeoutSeconds > 0)
            std::cerr << " (timeout " << copts.timeoutSeconds << "s)";
    }
    std::cerr << "\n";

    exp::ResultSet results = campaign.run(copts);
    if (shard_count > 0) {
        results = exp::ResultSet(
            exp::mergeShardOutcomes(results.outcomes()),
            results.workersUsed());
    }

    results.toTable().print();
    std::cout << "total simulated job time "
              << Table::num(results.totalJobSeconds(), 1) << "s on "
              << results.workersUsed() << " worker(s)";
    if (results.failedCount())
        std::cout << "; " << results.failedCount() << " job(s) FAILED";
    std::cout << "\n";

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out)
            NWSIM_FATAL("cannot write ", json_path);
        results.writeJson(out, json_timing);
        std::cerr << "wrote " << json_path << "\n";
    }
    if (!csv_path.empty()) {
        std::ofstream out(csv_path);
        if (!out)
            NWSIM_FATAL("cannot write ", csv_path);
        results.writeCsv(out);
        std::cerr << "wrote " << csv_path << "\n";
    }

    if (!faults.empty()) {
        // Drill self-check: every injected fault classified as expected
        // AND every real job unharmed.
        bool drill_ok = true;
        for (const std::string &kind : faults) {
            const exp::JobOutcome *o =
                results.find("inject-" + kind, "fault");
            drill_ok = drill_ok && o && verifyFaultOutcome(*o, kind, copts);
        }
        size_t sibling_failures = 0;
        for (const exp::JobOutcome &o : results.outcomes()) {
            if (o.configSpec != "fault" && !o.ok)
                ++sibling_failures;
        }
        if (sibling_failures) {
            std::cerr << "drill: " << sibling_failures
                      << " sibling job(s) failed\n";
            drill_ok = false;
        }
        std::cerr << (drill_ok ? "drill: PASS\n" : "drill: FAIL\n");
        return drill_ok ? 0 : 1;
    }

    return results.allOk() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        if (argc > 1 && std::string(argv[1]) == "serve")
            return serveMain(argc, argv);
        return runMain(argc, argv);
    } catch (const SimError &e) {
        std::cerr << "nwsweep: " << errorKindName(e.kind()) << ": "
                  << e.what() << "\n";
        return e.exitCode();
    } catch (const std::exception &e) {
        std::cerr << "nwsweep: internal error: " << e.what() << "\n";
        return exitcode::Internal;
    }
}
