/**
 * @file
 * pipeview: per-instruction pipeline timeline, in the spirit of
 * SimpleScalar's ptrace/pipeview.pl.
 *
 *     pipeview <workload | file.s> [--config NAME] [--skip N]
 *              [--insts N] [--width N]
 *
 * Prints one row per dynamic instruction with its stage timeline:
 *
 *     D = dispatch   i = waiting to issue   I = issue
 *     e = executing  W = writeback/complete w = waiting to commit
 *     C = commit     x = squashed           r = replay trap
 */

#include <iostream>
#include <map>
#include <sstream>
#include <vector>

#include "common/strings.hh"
#include "driver/presets.hh"
#include "driver/runner.hh"
#include "isa/disasm.hh"
#include "workloads/kernels.hh"

using namespace nwsim;

namespace
{

struct Row
{
    Addr pc = 0;
    Inst inst;
    bool packed = false;
    Cycle dispatch = 0;
    Cycle issue = 0;
    Cycle complete = 0;
    Cycle commit = 0;
    Cycle squash = 0;
    std::vector<Cycle> replays;
    bool committed = false;
    bool squashed = false;
};

int
usage()
{
    std::cerr << "usage: pipeview <workload> [--config NAME] "
                 "[--skip N] [--insts N] [--width N]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string target = argv[1];
    std::string config_name = "baseline";
    u64 skip = 0;
    u64 insts = 48;
    unsigned columns = 64;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::exit(usage());
            }
            return argv[++i];
        };
        if (arg == "--config")
            config_name = next();
        else if (arg == "--skip")
            skip = std::strtoull(next().c_str(), nullptr, 0);
        else if (arg == "--insts")
            insts = std::strtoull(next().c_str(), nullptr, 0);
        else if (arg == "--width")
            columns = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 0));
        else
            return usage();
    }

    CoreConfig cfg;
    if (config_name == "baseline")
        cfg = presets::baseline();
    else if (config_name == "packing")
        cfg = presets::packing(false);
    else if (config_name == "packing-replay")
        cfg = presets::packing(true);
    else if (config_name == "issue8")
        cfg = presets::issue8();
    else
        return usage();

    const Program prog = workloadByName(target).program();
    SparseMemory mem;
    prog.load(mem);
    OutOfOrderCore core(cfg, mem, prog.entry);
    if (skip)
        core.fastForward(skip);

    // Record a window of events. Seqs are reused after squashes, so key
    // rows by (seq, dispatch-generation).
    std::map<InstSeq, u64> generation;
    std::map<std::pair<InstSeq, u64>, Row> rows;
    std::vector<std::pair<InstSeq, u64>> order;
    u64 committed_in_window = 0;
    core.setTraceHook([&](const TraceEvent &ev) {
        if (ev.stage == TraceStage::Redirect)
            return;
        if (ev.stage == TraceStage::Dispatch) {
            const u64 gen = ++generation[ev.seq];
            Row row;
            row.pc = ev.pc;
            row.inst = ev.inst;
            row.dispatch = ev.cycle;
            rows[{ev.seq, gen}] = row;
            order.push_back({ev.seq, gen});
            return;
        }
        const auto key = std::make_pair(ev.seq, generation[ev.seq]);
        const auto it = rows.find(key);
        if (it == rows.end())
            return;
        Row &row = it->second;
        switch (ev.stage) {
          case TraceStage::Issue:
            row.issue = ev.cycle;
            row.packed |= ev.packed;
            break;
          case TraceStage::Complete:
            row.complete = ev.cycle;
            break;
          case TraceStage::Commit:
            row.commit = ev.cycle;
            row.committed = true;
            ++committed_in_window;
            break;
          case TraceStage::Squash:
            row.squash = ev.cycle;
            row.squashed = true;
            break;
          case TraceStage::Replay:
            row.replays.push_back(ev.cycle);
            break;
          default:
            break;
        }
    });

    while (committed_in_window < insts && !core.done())
        core.tick();
    core.setTraceHook({});

    if (order.empty()) {
        std::cerr << "no instructions traced\n";
        return 1;
    }

    const Cycle base = rows[order.front()].dispatch;
    std::cout << "pipeline timeline for " << target << " on "
              << config_name << " (cycle 0 = " << base << ")\n"
              << "D dispatch, I issue, e executing, W complete, "
                 "w wait-commit, C commit, r replay, x squash\n\n";

    for (const auto &key : order) {
        const Row &row = rows[key];
        const Cycle end =
            row.committed ? row.commit : (row.squashed ? row.squash : 0);
        if (end == 0 || end < base)
            continue;
        std::string lane(columns, '.');
        auto put = [&](Cycle c, char ch) {
            if (c >= base && c - base < columns)
                lane[static_cast<size_t>(c - base)] = ch;
        };
        // Fill phases back-to-front so instant marks win.
        if (row.issue && row.complete) {
            for (Cycle c = row.issue + 1; c < row.complete; ++c)
                put(c, 'e');
        }
        if (row.dispatch && row.issue) {
            for (Cycle c = row.dispatch + 1; c < row.issue; ++c)
                put(c, 'i');
        }
        if (row.complete && row.committed) {
            for (Cycle c = row.complete + 1; c < row.commit; ++c)
                put(c, 'w');
        }
        put(row.dispatch, 'D');
        put(row.issue, 'I');
        put(row.complete, 'W');
        for (const Cycle c : row.replays)
            put(c, 'r');
        if (row.committed)
            put(row.commit, 'C');
        if (row.squashed)
            put(row.squash, 'x');

        std::ostringstream left;
        left << hexString(row.pc) << "  "
             << disassemble(row.inst, row.pc);
        std::string text = left.str();
        text.resize(34, ' ');
        std::cout << text << " |" << lane << "|"
                  << (row.packed ? " pk" : "") << "\n";
    }
    return 0;
}
