# Empty compiler generated dependencies file for test_figure_mechanisms.
# This may be replaced when dependencies are built.
