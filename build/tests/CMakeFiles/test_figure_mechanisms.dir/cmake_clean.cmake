file(REMOVE_RECURSE
  "CMakeFiles/test_figure_mechanisms.dir/test_figure_mechanisms.cc.o"
  "CMakeFiles/test_figure_mechanisms.dir/test_figure_mechanisms.cc.o.d"
  "test_figure_mechanisms"
  "test_figure_mechanisms.pdb"
  "test_figure_mechanisms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_figure_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
