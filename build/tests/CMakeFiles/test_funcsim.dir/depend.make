# Empty dependencies file for test_funcsim.
# This may be replaced when dependencies are built.
