# Empty compiler generated dependencies file for test_pipeline_configs.
# This may be replaced when dependencies are built.
