file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_configs.dir/test_pipeline_configs.cc.o"
  "CMakeFiles/test_pipeline_configs.dir/test_pipeline_configs.cc.o.d"
  "test_pipeline_configs"
  "test_pipeline_configs.pdb"
  "test_pipeline_configs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
