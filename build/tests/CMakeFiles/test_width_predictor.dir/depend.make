# Empty dependencies file for test_width_predictor.
# This may be replaced when dependencies are built.
