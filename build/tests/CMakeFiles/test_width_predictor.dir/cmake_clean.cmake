file(REMOVE_RECURSE
  "CMakeFiles/test_width_predictor.dir/test_width_predictor.cc.o"
  "CMakeFiles/test_width_predictor.dir/test_width_predictor.cc.o.d"
  "test_width_predictor"
  "test_width_predictor.pdb"
  "test_width_predictor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_width_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
