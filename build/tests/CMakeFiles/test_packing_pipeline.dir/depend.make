# Empty dependencies file for test_packing_pipeline.
# This may be replaced when dependencies are built.
