file(REMOVE_RECURSE
  "CMakeFiles/test_packing_pipeline.dir/test_packing_pipeline.cc.o"
  "CMakeFiles/test_packing_pipeline.dir/test_packing_pipeline.cc.o.d"
  "test_packing_pipeline"
  "test_packing_pipeline.pdb"
  "test_packing_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packing_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
