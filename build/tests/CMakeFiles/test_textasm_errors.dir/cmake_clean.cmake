file(REMOVE_RECURSE
  "CMakeFiles/test_textasm_errors.dir/test_textasm_errors.cc.o"
  "CMakeFiles/test_textasm_errors.dir/test_textasm_errors.cc.o.d"
  "test_textasm_errors"
  "test_textasm_errors.pdb"
  "test_textasm_errors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_textasm_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
