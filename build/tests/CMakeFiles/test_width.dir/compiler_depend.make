# Empty compiler generated dependencies file for test_width.
# This may be replaced when dependencies are built.
