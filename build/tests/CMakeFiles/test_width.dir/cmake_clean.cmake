file(REMOVE_RECURSE
  "CMakeFiles/test_width.dir/test_width.cc.o"
  "CMakeFiles/test_width.dir/test_width.cc.o.d"
  "test_width"
  "test_width.pdb"
  "test_width[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
