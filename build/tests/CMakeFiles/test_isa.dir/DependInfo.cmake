
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/test_isa.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/test_isa.dir/test_isa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/nwsim_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/nwsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/nwsim_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nwsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/func/CMakeFiles/nwsim_func.dir/DependInfo.cmake"
  "/root/repo/build/src/bpred/CMakeFiles/nwsim_bpred.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nwsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/nwsim_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/nwsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/nwsim_power.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nwsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
