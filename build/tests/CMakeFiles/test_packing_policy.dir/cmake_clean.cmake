file(REMOVE_RECURSE
  "CMakeFiles/test_packing_policy.dir/test_packing_policy.cc.o"
  "CMakeFiles/test_packing_policy.dir/test_packing_policy.cc.o.d"
  "test_packing_policy"
  "test_packing_policy.pdb"
  "test_packing_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packing_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
