# Empty dependencies file for test_packing_policy.
# This may be replaced when dependencies are built.
