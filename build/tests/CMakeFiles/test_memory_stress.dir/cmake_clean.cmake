file(REMOVE_RECURSE
  "CMakeFiles/test_memory_stress.dir/test_memory_stress.cc.o"
  "CMakeFiles/test_memory_stress.dir/test_memory_stress.cc.o.d"
  "test_memory_stress"
  "test_memory_stress.pdb"
  "test_memory_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
