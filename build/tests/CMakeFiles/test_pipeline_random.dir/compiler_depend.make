# Empty compiler generated dependencies file for test_pipeline_random.
# This may be replaced when dependencies are built.
