file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_random.dir/test_pipeline_random.cc.o"
  "CMakeFiles/test_pipeline_random.dir/test_pipeline_random.cc.o.d"
  "test_pipeline_random"
  "test_pipeline_random.pdb"
  "test_pipeline_random[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
