file(REMOVE_RECURSE
  "CMakeFiles/test_cache_gating.dir/test_cache_gating.cc.o"
  "CMakeFiles/test_cache_gating.dir/test_cache_gating.cc.o.d"
  "test_cache_gating"
  "test_cache_gating.pdb"
  "test_cache_gating[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_gating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
