# Empty compiler generated dependencies file for test_cache_gating.
# This may be replaced when dependencies are built.
