# Empty compiler generated dependencies file for pipeview.
# This may be replaced when dependencies are built.
