file(REMOVE_RECURSE
  "CMakeFiles/nwsim.dir/nwsim.cc.o"
  "CMakeFiles/nwsim.dir/nwsim.cc.o.d"
  "nwsim"
  "nwsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
