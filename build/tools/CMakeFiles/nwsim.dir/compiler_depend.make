# Empty compiler generated dependencies file for nwsim.
# This may be replaced when dependencies are built.
