file(REMOVE_RECURSE
  "CMakeFiles/power_gating_demo.dir/power_gating_demo.cc.o"
  "CMakeFiles/power_gating_demo.dir/power_gating_demo.cc.o.d"
  "power_gating_demo"
  "power_gating_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_gating_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
