# Empty dependencies file for power_gating_demo.
# This may be replaced when dependencies are built.
