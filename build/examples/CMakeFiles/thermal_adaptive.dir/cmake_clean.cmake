file(REMOVE_RECURSE
  "CMakeFiles/thermal_adaptive.dir/thermal_adaptive.cc.o"
  "CMakeFiles/thermal_adaptive.dir/thermal_adaptive.cc.o.d"
  "thermal_adaptive"
  "thermal_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
