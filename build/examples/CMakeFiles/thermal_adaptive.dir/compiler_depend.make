# Empty compiler generated dependencies file for thermal_adaptive.
# This may be replaced when dependencies are built.
