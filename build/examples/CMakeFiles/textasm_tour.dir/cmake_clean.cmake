file(REMOVE_RECURSE
  "CMakeFiles/textasm_tour.dir/textasm_tour.cc.o"
  "CMakeFiles/textasm_tour.dir/textasm_tour.cc.o.d"
  "textasm_tour"
  "textasm_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textasm_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
