# Empty compiler generated dependencies file for textasm_tour.
# This may be replaced when dependencies are built.
