file(REMOVE_RECURSE
  "CMakeFiles/nwsim_workloads.dir/media_g721.cc.o"
  "CMakeFiles/nwsim_workloads.dir/media_g721.cc.o.d"
  "CMakeFiles/nwsim_workloads.dir/media_gsm.cc.o"
  "CMakeFiles/nwsim_workloads.dir/media_gsm.cc.o.d"
  "CMakeFiles/nwsim_workloads.dir/media_mpeg2.cc.o"
  "CMakeFiles/nwsim_workloads.dir/media_mpeg2.cc.o.d"
  "CMakeFiles/nwsim_workloads.dir/registry.cc.o"
  "CMakeFiles/nwsim_workloads.dir/registry.cc.o.d"
  "CMakeFiles/nwsim_workloads.dir/spec_compress.cc.o"
  "CMakeFiles/nwsim_workloads.dir/spec_compress.cc.o.d"
  "CMakeFiles/nwsim_workloads.dir/spec_gcc.cc.o"
  "CMakeFiles/nwsim_workloads.dir/spec_gcc.cc.o.d"
  "CMakeFiles/nwsim_workloads.dir/spec_go.cc.o"
  "CMakeFiles/nwsim_workloads.dir/spec_go.cc.o.d"
  "CMakeFiles/nwsim_workloads.dir/spec_ijpeg.cc.o"
  "CMakeFiles/nwsim_workloads.dir/spec_ijpeg.cc.o.d"
  "CMakeFiles/nwsim_workloads.dir/spec_li.cc.o"
  "CMakeFiles/nwsim_workloads.dir/spec_li.cc.o.d"
  "CMakeFiles/nwsim_workloads.dir/spec_m88ksim.cc.o"
  "CMakeFiles/nwsim_workloads.dir/spec_m88ksim.cc.o.d"
  "CMakeFiles/nwsim_workloads.dir/spec_perl.cc.o"
  "CMakeFiles/nwsim_workloads.dir/spec_perl.cc.o.d"
  "CMakeFiles/nwsim_workloads.dir/spec_vortex.cc.o"
  "CMakeFiles/nwsim_workloads.dir/spec_vortex.cc.o.d"
  "CMakeFiles/nwsim_workloads.dir/support.cc.o"
  "CMakeFiles/nwsim_workloads.dir/support.cc.o.d"
  "libnwsim_workloads.a"
  "libnwsim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwsim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
