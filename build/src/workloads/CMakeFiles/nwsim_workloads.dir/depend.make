# Empty dependencies file for nwsim_workloads.
# This may be replaced when dependencies are built.
