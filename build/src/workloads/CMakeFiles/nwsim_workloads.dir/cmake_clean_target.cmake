file(REMOVE_RECURSE
  "libnwsim_workloads.a"
)
