
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/media_g721.cc" "src/workloads/CMakeFiles/nwsim_workloads.dir/media_g721.cc.o" "gcc" "src/workloads/CMakeFiles/nwsim_workloads.dir/media_g721.cc.o.d"
  "/root/repo/src/workloads/media_gsm.cc" "src/workloads/CMakeFiles/nwsim_workloads.dir/media_gsm.cc.o" "gcc" "src/workloads/CMakeFiles/nwsim_workloads.dir/media_gsm.cc.o.d"
  "/root/repo/src/workloads/media_mpeg2.cc" "src/workloads/CMakeFiles/nwsim_workloads.dir/media_mpeg2.cc.o" "gcc" "src/workloads/CMakeFiles/nwsim_workloads.dir/media_mpeg2.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/nwsim_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/nwsim_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/spec_compress.cc" "src/workloads/CMakeFiles/nwsim_workloads.dir/spec_compress.cc.o" "gcc" "src/workloads/CMakeFiles/nwsim_workloads.dir/spec_compress.cc.o.d"
  "/root/repo/src/workloads/spec_gcc.cc" "src/workloads/CMakeFiles/nwsim_workloads.dir/spec_gcc.cc.o" "gcc" "src/workloads/CMakeFiles/nwsim_workloads.dir/spec_gcc.cc.o.d"
  "/root/repo/src/workloads/spec_go.cc" "src/workloads/CMakeFiles/nwsim_workloads.dir/spec_go.cc.o" "gcc" "src/workloads/CMakeFiles/nwsim_workloads.dir/spec_go.cc.o.d"
  "/root/repo/src/workloads/spec_ijpeg.cc" "src/workloads/CMakeFiles/nwsim_workloads.dir/spec_ijpeg.cc.o" "gcc" "src/workloads/CMakeFiles/nwsim_workloads.dir/spec_ijpeg.cc.o.d"
  "/root/repo/src/workloads/spec_li.cc" "src/workloads/CMakeFiles/nwsim_workloads.dir/spec_li.cc.o" "gcc" "src/workloads/CMakeFiles/nwsim_workloads.dir/spec_li.cc.o.d"
  "/root/repo/src/workloads/spec_m88ksim.cc" "src/workloads/CMakeFiles/nwsim_workloads.dir/spec_m88ksim.cc.o" "gcc" "src/workloads/CMakeFiles/nwsim_workloads.dir/spec_m88ksim.cc.o.d"
  "/root/repo/src/workloads/spec_perl.cc" "src/workloads/CMakeFiles/nwsim_workloads.dir/spec_perl.cc.o" "gcc" "src/workloads/CMakeFiles/nwsim_workloads.dir/spec_perl.cc.o.d"
  "/root/repo/src/workloads/spec_vortex.cc" "src/workloads/CMakeFiles/nwsim_workloads.dir/spec_vortex.cc.o" "gcc" "src/workloads/CMakeFiles/nwsim_workloads.dir/spec_vortex.cc.o.d"
  "/root/repo/src/workloads/support.cc" "src/workloads/CMakeFiles/nwsim_workloads.dir/support.cc.o" "gcc" "src/workloads/CMakeFiles/nwsim_workloads.dir/support.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asm/CMakeFiles/nwsim_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nwsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/nwsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nwsim_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
