file(REMOVE_RECURSE
  "libnwsim_common.a"
)
