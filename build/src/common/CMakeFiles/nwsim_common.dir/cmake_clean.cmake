file(REMOVE_RECURSE
  "CMakeFiles/nwsim_common.dir/logging.cc.o"
  "CMakeFiles/nwsim_common.dir/logging.cc.o.d"
  "CMakeFiles/nwsim_common.dir/strings.cc.o"
  "CMakeFiles/nwsim_common.dir/strings.cc.o.d"
  "libnwsim_common.a"
  "libnwsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
