# Empty dependencies file for nwsim_common.
# This may be replaced when dependencies are built.
