file(REMOVE_RECURSE
  "CMakeFiles/nwsim_driver.dir/runner.cc.o"
  "CMakeFiles/nwsim_driver.dir/runner.cc.o.d"
  "CMakeFiles/nwsim_driver.dir/table.cc.o"
  "CMakeFiles/nwsim_driver.dir/table.cc.o.d"
  "libnwsim_driver.a"
  "libnwsim_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwsim_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
