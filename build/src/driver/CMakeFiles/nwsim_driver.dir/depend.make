# Empty dependencies file for nwsim_driver.
# This may be replaced when dependencies are built.
