file(REMOVE_RECURSE
  "libnwsim_driver.a"
)
