file(REMOVE_RECURSE
  "libnwsim_power.a"
)
