file(REMOVE_RECURSE
  "CMakeFiles/nwsim_power.dir/device_model.cc.o"
  "CMakeFiles/nwsim_power.dir/device_model.cc.o.d"
  "CMakeFiles/nwsim_power.dir/thermal.cc.o"
  "CMakeFiles/nwsim_power.dir/thermal.cc.o.d"
  "libnwsim_power.a"
  "libnwsim_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwsim_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
