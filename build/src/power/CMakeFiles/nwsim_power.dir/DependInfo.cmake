
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/device_model.cc" "src/power/CMakeFiles/nwsim_power.dir/device_model.cc.o" "gcc" "src/power/CMakeFiles/nwsim_power.dir/device_model.cc.o.d"
  "/root/repo/src/power/thermal.cc" "src/power/CMakeFiles/nwsim_power.dir/thermal.cc.o" "gcc" "src/power/CMakeFiles/nwsim_power.dir/thermal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/nwsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nwsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
