# Empty dependencies file for nwsim_power.
# This may be replaced when dependencies are built.
