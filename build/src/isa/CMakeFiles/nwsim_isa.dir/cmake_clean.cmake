file(REMOVE_RECURSE
  "CMakeFiles/nwsim_isa.dir/disasm.cc.o"
  "CMakeFiles/nwsim_isa.dir/disasm.cc.o.d"
  "CMakeFiles/nwsim_isa.dir/encode.cc.o"
  "CMakeFiles/nwsim_isa.dir/encode.cc.o.d"
  "CMakeFiles/nwsim_isa.dir/opcode.cc.o"
  "CMakeFiles/nwsim_isa.dir/opcode.cc.o.d"
  "libnwsim_isa.a"
  "libnwsim_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwsim_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
