file(REMOVE_RECURSE
  "libnwsim_isa.a"
)
