# Empty dependencies file for nwsim_isa.
# This may be replaced when dependencies are built.
