file(REMOVE_RECURSE
  "libnwsim_mem.a"
)
