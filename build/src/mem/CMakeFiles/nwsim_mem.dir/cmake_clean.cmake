file(REMOVE_RECURSE
  "CMakeFiles/nwsim_mem.dir/cache.cc.o"
  "CMakeFiles/nwsim_mem.dir/cache.cc.o.d"
  "CMakeFiles/nwsim_mem.dir/memsystem.cc.o"
  "CMakeFiles/nwsim_mem.dir/memsystem.cc.o.d"
  "CMakeFiles/nwsim_mem.dir/sparse_memory.cc.o"
  "CMakeFiles/nwsim_mem.dir/sparse_memory.cc.o.d"
  "CMakeFiles/nwsim_mem.dir/tlb.cc.o"
  "CMakeFiles/nwsim_mem.dir/tlb.cc.o.d"
  "libnwsim_mem.a"
  "libnwsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
