# Empty dependencies file for nwsim_mem.
# This may be replaced when dependencies are built.
