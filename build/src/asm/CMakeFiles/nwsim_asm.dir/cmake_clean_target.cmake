file(REMOVE_RECURSE
  "libnwsim_asm.a"
)
