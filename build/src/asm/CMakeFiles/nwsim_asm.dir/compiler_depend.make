# Empty compiler generated dependencies file for nwsim_asm.
# This may be replaced when dependencies are built.
