file(REMOVE_RECURSE
  "CMakeFiles/nwsim_asm.dir/assembler.cc.o"
  "CMakeFiles/nwsim_asm.dir/assembler.cc.o.d"
  "CMakeFiles/nwsim_asm.dir/program.cc.o"
  "CMakeFiles/nwsim_asm.dir/program.cc.o.d"
  "CMakeFiles/nwsim_asm.dir/textasm.cc.o"
  "CMakeFiles/nwsim_asm.dir/textasm.cc.o.d"
  "libnwsim_asm.a"
  "libnwsim_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwsim_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
