file(REMOVE_RECURSE
  "CMakeFiles/nwsim_core.dir/cache_gating.cc.o"
  "CMakeFiles/nwsim_core.dir/cache_gating.cc.o.d"
  "CMakeFiles/nwsim_core.dir/gating.cc.o"
  "CMakeFiles/nwsim_core.dir/gating.cc.o.d"
  "CMakeFiles/nwsim_core.dir/packing.cc.o"
  "CMakeFiles/nwsim_core.dir/packing.cc.o.d"
  "CMakeFiles/nwsim_core.dir/profiler.cc.o"
  "CMakeFiles/nwsim_core.dir/profiler.cc.o.d"
  "CMakeFiles/nwsim_core.dir/width_predictor.cc.o"
  "CMakeFiles/nwsim_core.dir/width_predictor.cc.o.d"
  "libnwsim_core.a"
  "libnwsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
