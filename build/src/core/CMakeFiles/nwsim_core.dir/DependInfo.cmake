
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cache_gating.cc" "src/core/CMakeFiles/nwsim_core.dir/cache_gating.cc.o" "gcc" "src/core/CMakeFiles/nwsim_core.dir/cache_gating.cc.o.d"
  "/root/repo/src/core/gating.cc" "src/core/CMakeFiles/nwsim_core.dir/gating.cc.o" "gcc" "src/core/CMakeFiles/nwsim_core.dir/gating.cc.o.d"
  "/root/repo/src/core/packing.cc" "src/core/CMakeFiles/nwsim_core.dir/packing.cc.o" "gcc" "src/core/CMakeFiles/nwsim_core.dir/packing.cc.o.d"
  "/root/repo/src/core/profiler.cc" "src/core/CMakeFiles/nwsim_core.dir/profiler.cc.o" "gcc" "src/core/CMakeFiles/nwsim_core.dir/profiler.cc.o.d"
  "/root/repo/src/core/width_predictor.cc" "src/core/CMakeFiles/nwsim_core.dir/width_predictor.cc.o" "gcc" "src/core/CMakeFiles/nwsim_core.dir/width_predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/nwsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/nwsim_power.dir/DependInfo.cmake"
  "/root/repo/build/src/func/CMakeFiles/nwsim_func.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/nwsim_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nwsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nwsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
