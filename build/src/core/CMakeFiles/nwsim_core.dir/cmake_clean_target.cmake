file(REMOVE_RECURSE
  "libnwsim_core.a"
)
