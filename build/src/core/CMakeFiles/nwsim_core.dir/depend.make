# Empty dependencies file for nwsim_core.
# This may be replaced when dependencies are built.
