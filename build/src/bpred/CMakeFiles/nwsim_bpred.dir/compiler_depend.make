# Empty compiler generated dependencies file for nwsim_bpred.
# This may be replaced when dependencies are built.
