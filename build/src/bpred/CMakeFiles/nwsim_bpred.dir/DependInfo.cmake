
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bpred/btb.cc" "src/bpred/CMakeFiles/nwsim_bpred.dir/btb.cc.o" "gcc" "src/bpred/CMakeFiles/nwsim_bpred.dir/btb.cc.o.d"
  "/root/repo/src/bpred/combining.cc" "src/bpred/CMakeFiles/nwsim_bpred.dir/combining.cc.o" "gcc" "src/bpred/CMakeFiles/nwsim_bpred.dir/combining.cc.o.d"
  "/root/repo/src/bpred/ras.cc" "src/bpred/CMakeFiles/nwsim_bpred.dir/ras.cc.o" "gcc" "src/bpred/CMakeFiles/nwsim_bpred.dir/ras.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/nwsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nwsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
