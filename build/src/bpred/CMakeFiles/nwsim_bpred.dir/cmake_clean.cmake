file(REMOVE_RECURSE
  "CMakeFiles/nwsim_bpred.dir/btb.cc.o"
  "CMakeFiles/nwsim_bpred.dir/btb.cc.o.d"
  "CMakeFiles/nwsim_bpred.dir/combining.cc.o"
  "CMakeFiles/nwsim_bpred.dir/combining.cc.o.d"
  "CMakeFiles/nwsim_bpred.dir/ras.cc.o"
  "CMakeFiles/nwsim_bpred.dir/ras.cc.o.d"
  "libnwsim_bpred.a"
  "libnwsim_bpred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwsim_bpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
