file(REMOVE_RECURSE
  "libnwsim_bpred.a"
)
