file(REMOVE_RECURSE
  "libnwsim_pipeline.a"
)
