# Empty dependencies file for nwsim_pipeline.
# This may be replaced when dependencies are built.
