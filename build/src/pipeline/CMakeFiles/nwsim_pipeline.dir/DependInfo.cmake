
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/commit.cc" "src/pipeline/CMakeFiles/nwsim_pipeline.dir/commit.cc.o" "gcc" "src/pipeline/CMakeFiles/nwsim_pipeline.dir/commit.cc.o.d"
  "/root/repo/src/pipeline/core.cc" "src/pipeline/CMakeFiles/nwsim_pipeline.dir/core.cc.o" "gcc" "src/pipeline/CMakeFiles/nwsim_pipeline.dir/core.cc.o.d"
  "/root/repo/src/pipeline/dispatch.cc" "src/pipeline/CMakeFiles/nwsim_pipeline.dir/dispatch.cc.o" "gcc" "src/pipeline/CMakeFiles/nwsim_pipeline.dir/dispatch.cc.o.d"
  "/root/repo/src/pipeline/fetch.cc" "src/pipeline/CMakeFiles/nwsim_pipeline.dir/fetch.cc.o" "gcc" "src/pipeline/CMakeFiles/nwsim_pipeline.dir/fetch.cc.o.d"
  "/root/repo/src/pipeline/issue.cc" "src/pipeline/CMakeFiles/nwsim_pipeline.dir/issue.cc.o" "gcc" "src/pipeline/CMakeFiles/nwsim_pipeline.dir/issue.cc.o.d"
  "/root/repo/src/pipeline/trace.cc" "src/pipeline/CMakeFiles/nwsim_pipeline.dir/trace.cc.o" "gcc" "src/pipeline/CMakeFiles/nwsim_pipeline.dir/trace.cc.o.d"
  "/root/repo/src/pipeline/writeback.cc" "src/pipeline/CMakeFiles/nwsim_pipeline.dir/writeback.cc.o" "gcc" "src/pipeline/CMakeFiles/nwsim_pipeline.dir/writeback.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nwsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bpred/CMakeFiles/nwsim_bpred.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nwsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/func/CMakeFiles/nwsim_func.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/nwsim_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/nwsim_power.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/nwsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nwsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
