file(REMOVE_RECURSE
  "CMakeFiles/nwsim_pipeline.dir/commit.cc.o"
  "CMakeFiles/nwsim_pipeline.dir/commit.cc.o.d"
  "CMakeFiles/nwsim_pipeline.dir/core.cc.o"
  "CMakeFiles/nwsim_pipeline.dir/core.cc.o.d"
  "CMakeFiles/nwsim_pipeline.dir/dispatch.cc.o"
  "CMakeFiles/nwsim_pipeline.dir/dispatch.cc.o.d"
  "CMakeFiles/nwsim_pipeline.dir/fetch.cc.o"
  "CMakeFiles/nwsim_pipeline.dir/fetch.cc.o.d"
  "CMakeFiles/nwsim_pipeline.dir/issue.cc.o"
  "CMakeFiles/nwsim_pipeline.dir/issue.cc.o.d"
  "CMakeFiles/nwsim_pipeline.dir/trace.cc.o"
  "CMakeFiles/nwsim_pipeline.dir/trace.cc.o.d"
  "CMakeFiles/nwsim_pipeline.dir/writeback.cc.o"
  "CMakeFiles/nwsim_pipeline.dir/writeback.cc.o.d"
  "libnwsim_pipeline.a"
  "libnwsim_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwsim_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
