# Empty dependencies file for nwsim_func.
# This may be replaced when dependencies are built.
