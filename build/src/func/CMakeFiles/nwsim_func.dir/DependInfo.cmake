
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/func/func_sim.cc" "src/func/CMakeFiles/nwsim_func.dir/func_sim.cc.o" "gcc" "src/func/CMakeFiles/nwsim_func.dir/func_sim.cc.o.d"
  "/root/repo/src/func/semantics.cc" "src/func/CMakeFiles/nwsim_func.dir/semantics.cc.o" "gcc" "src/func/CMakeFiles/nwsim_func.dir/semantics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/nwsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nwsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/nwsim_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nwsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
