file(REMOVE_RECURSE
  "libnwsim_func.a"
)
