file(REMOVE_RECURSE
  "CMakeFiles/nwsim_func.dir/func_sim.cc.o"
  "CMakeFiles/nwsim_func.dir/func_sim.cc.o.d"
  "CMakeFiles/nwsim_func.dir/semantics.cc.o"
  "CMakeFiles/nwsim_func.dir/semantics.cc.o.d"
  "libnwsim_func.a"
  "libnwsim_func.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwsim_func.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
