# Empty compiler generated dependencies file for fig10_packing_speedup.
# This may be replaced when dependencies are built.
