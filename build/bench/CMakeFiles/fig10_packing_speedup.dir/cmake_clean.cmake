file(REMOVE_RECURSE
  "CMakeFiles/fig10_packing_speedup.dir/fig10_packing_speedup.cc.o"
  "CMakeFiles/fig10_packing_speedup.dir/fig10_packing_speedup.cc.o.d"
  "fig10_packing_speedup"
  "fig10_packing_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_packing_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
