# Empty dependencies file for ablation_cache_gating.
# This may be replaced when dependencies are built.
