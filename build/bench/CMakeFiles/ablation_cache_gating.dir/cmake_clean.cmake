file(REMOVE_RECURSE
  "CMakeFiles/ablation_cache_gating.dir/ablation_cache_gating.cc.o"
  "CMakeFiles/ablation_cache_gating.dir/ablation_cache_gating.cc.o.d"
  "ablation_cache_gating"
  "ablation_cache_gating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cache_gating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
