file(REMOVE_RECURSE
  "CMakeFiles/fig01_bitwidth_cdf.dir/fig01_bitwidth_cdf.cc.o"
  "CMakeFiles/fig01_bitwidth_cdf.dir/fig01_bitwidth_cdf.cc.o.d"
  "fig01_bitwidth_cdf"
  "fig01_bitwidth_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_bitwidth_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
