file(REMOVE_RECURSE
  "CMakeFiles/ablation_earlyout.dir/ablation_earlyout.cc.o"
  "CMakeFiles/ablation_earlyout.dir/ablation_earlyout.cc.o.d"
  "ablation_earlyout"
  "ablation_earlyout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_earlyout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
