# Empty dependencies file for ablation_earlyout.
# This may be replaced when dependencies are built.
