# Empty dependencies file for fig06_net_power.
# This may be replaced when dependencies are built.
