file(REMOVE_RECURSE
  "CMakeFiles/fig06_net_power.dir/fig06_net_power.cc.o"
  "CMakeFiles/fig06_net_power.dir/fig06_net_power.cc.o.d"
  "fig06_net_power"
  "fig06_net_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_net_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
