# Empty dependencies file for stat_load_zerodetect.
# This may be replaced when dependencies are built.
