file(REMOVE_RECURSE
  "CMakeFiles/stat_load_zerodetect.dir/stat_load_zerodetect.cc.o"
  "CMakeFiles/stat_load_zerodetect.dir/stat_load_zerodetect.cc.o.d"
  "stat_load_zerodetect"
  "stat_load_zerodetect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stat_load_zerodetect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
