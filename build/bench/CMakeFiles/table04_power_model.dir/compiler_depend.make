# Empty compiler generated dependencies file for table04_power_model.
# This may be replaced when dependencies are built.
