file(REMOVE_RECURSE
  "CMakeFiles/table04_power_model.dir/table04_power_model.cc.o"
  "CMakeFiles/table04_power_model.dir/table04_power_model.cc.o.d"
  "table04_power_model"
  "table04_power_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_power_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
