file(REMOVE_RECURSE
  "CMakeFiles/fig02_width_fluctuation.dir/fig02_width_fluctuation.cc.o"
  "CMakeFiles/fig02_width_fluctuation.dir/fig02_width_fluctuation.cc.o.d"
  "fig02_width_fluctuation"
  "fig02_width_fluctuation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_width_fluctuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
