# Empty dependencies file for fig02_width_fluctuation.
# This may be replaced when dependencies are built.
