file(REMOVE_RECURSE
  "CMakeFiles/table01_config.dir/table01_config.cc.o"
  "CMakeFiles/table01_config.dir/table01_config.cc.o.d"
  "table01_config"
  "table01_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
