# Empty dependencies file for fig07_power_usage.
# This may be replaced when dependencies are built.
