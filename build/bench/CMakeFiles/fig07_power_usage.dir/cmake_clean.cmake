file(REMOVE_RECURSE
  "CMakeFiles/fig07_power_usage.dir/fig07_power_usage.cc.o"
  "CMakeFiles/fig07_power_usage.dir/fig07_power_usage.cc.o.d"
  "fig07_power_usage"
  "fig07_power_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_power_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
