file(REMOVE_RECURSE
  "CMakeFiles/fig11_ipc_comparison.dir/fig11_ipc_comparison.cc.o"
  "CMakeFiles/fig11_ipc_comparison.dir/fig11_ipc_comparison.cc.o.d"
  "fig11_ipc_comparison"
  "fig11_ipc_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_ipc_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
