# Empty compiler generated dependencies file for fig05_narrow33_breakdown.
# This may be replaced when dependencies are built.
