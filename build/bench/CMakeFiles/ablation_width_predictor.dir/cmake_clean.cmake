file(REMOVE_RECURSE
  "CMakeFiles/ablation_width_predictor.dir/ablation_width_predictor.cc.o"
  "CMakeFiles/ablation_width_predictor.dir/ablation_width_predictor.cc.o.d"
  "ablation_width_predictor"
  "ablation_width_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_width_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
