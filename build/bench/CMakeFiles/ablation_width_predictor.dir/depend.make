# Empty dependencies file for ablation_width_predictor.
# This may be replaced when dependencies are built.
