file(REMOVE_RECURSE
  "CMakeFiles/fig04_narrow16_breakdown.dir/fig04_narrow16_breakdown.cc.o"
  "CMakeFiles/fig04_narrow16_breakdown.dir/fig04_narrow16_breakdown.cc.o.d"
  "fig04_narrow16_breakdown"
  "fig04_narrow16_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_narrow16_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
