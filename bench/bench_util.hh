/**
 * @file
 * Shared helpers for the experiment benches: run a workload set on a
 * configuration and print paper-style tables.
 */

#ifndef NWSIM_BENCH_BENCH_UTIL_HH
#define NWSIM_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "driver/presets.hh"
#include "driver/runner.hh"
#include "driver/table.hh"
#include "workloads/kernels.hh"

namespace nwsim::bench
{

/** Print a bench header with the paper artifact being reproduced. */
inline void
header(const std::string &artifact, const std::string &what)
{
    std::cout << "==============================================\n"
              << artifact << " — " << what << "\n"
              << "Brooks & Martonosi, HPCA 1999 (nwsim reproduction)\n"
              << "==============================================\n";
}

/** Run every workload of @p suite on @p cfg. */
inline std::vector<RunResult>
runSuite(const std::string &suite, const CoreConfig &cfg,
         const std::string &config_name)
{
    const RunOptions opts = resolveRunOptions();
    std::vector<RunResult> out;
    for (const Workload &w : suiteWorkloads(suite)) {
        out.push_back(
            runProgram(w.program(), cfg, opts, w.name, config_name));
    }
    return out;
}

/** Run all 14 workloads on @p cfg. */
inline std::vector<RunResult>
runAll(const CoreConfig &cfg, const std::string &config_name)
{
    const RunOptions opts = resolveRunOptions();
    std::vector<RunResult> out;
    for (const Workload &w : allWorkloads()) {
        out.push_back(
            runProgram(w.program(), cfg, opts, w.name, config_name));
    }
    return out;
}

/** Arithmetic mean of @p f over the results of one suite. */
template <typename F>
double
suiteMean(const std::vector<RunResult> &results, const std::string &suite,
          F &&f)
{
    double sum = 0.0;
    unsigned n = 0;
    for (const RunResult &r : results) {
        if (workloadByName(r.workload).suite == suite) {
            sum += f(r);
            ++n;
        }
    }
    return n ? sum / n : 0.0;
}

} // namespace nwsim::bench

#endif // NWSIM_BENCH_BENCH_UTIL_HH
