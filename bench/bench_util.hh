/**
 * @file
 * Shared helpers for the experiment benches: run a workload set on a
 * configuration and print paper-style tables.
 *
 * Every bench funnels its simulations through the campaign engine's
 * Executor API (exp/campaign.hh) rather than a hand-rolled loop: one
 * Campaign per (config, workload-set), executed in parallel, with the
 * same retry/classification machinery the sweeps use. Per-job results
 * are bit-identical to a serial run (see campaign.hh's determinism
 * guarantee), so the printed tables are unchanged — the benches are
 * just faster and share one execution path with nwsweep.
 */

#ifndef NWSIM_BENCH_BENCH_UTIL_HH
#define NWSIM_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "driver/presets.hh"
#include "driver/runner.hh"
#include "driver/table.hh"
#include "exp/campaign.hh"
#include "workloads/kernels.hh"

namespace nwsim::bench
{

/** Print a bench header with the paper artifact being reproduced. */
inline void
header(const std::string &artifact, const std::string &what)
{
    std::cout << "==============================================\n"
              << artifact << " — " << what << "\n"
              << "Brooks & Martonosi, HPCA 1999 (nwsim reproduction)\n"
              << "==============================================\n";
}

/**
 * Run @p workloads on @p cfg as one parallel campaign and return the
 * results in workload order. @p config_name is the label used in stats
 * and tables; the CoreConfig itself travels with each job, so bench
 * configs that no spec string can express work unchanged (and survive
 * a remote executor's serialization). A failed job surfaces as the
 * campaign's classified exception, like the old direct call would.
 */
inline std::vector<RunResult>
runWorkloads(const std::vector<Workload> &workloads,
             const CoreConfig &cfg, const std::string &config_name)
{
    const RunOptions opts = resolveRunOptions();
    exp::Campaign campaign;
    for (const Workload &w : workloads) {
        exp::SimJob job;
        job.workload = w.name;
        job.configSpec = config_name;
        job.config = cfg;
        job.opts = opts;
        campaign.add(std::move(job));
    }
    const exp::ResultSet results = campaign.run({});
    std::vector<RunResult> out;
    out.reserve(workloads.size());
    for (const Workload &w : workloads)
        out.push_back(results.get(w.name, config_name));
    return out;
}

/** Run every workload of @p suite on @p cfg. */
inline std::vector<RunResult>
runSuite(const std::string &suite, const CoreConfig &cfg,
         const std::string &config_name)
{
    return runWorkloads(suiteWorkloads(suite), cfg, config_name);
}

/** Run all 14 workloads on @p cfg. */
inline std::vector<RunResult>
runAll(const CoreConfig &cfg, const std::string &config_name)
{
    return runWorkloads(allWorkloads(), cfg, config_name);
}

/** Arithmetic mean of @p f over the results of one suite. */
template <typename F>
double
suiteMean(const std::vector<RunResult> &results, const std::string &suite,
          F &&f)
{
    double sum = 0.0;
    unsigned n = 0;
    for (const RunResult &r : results) {
        if (workloadByName(r.workload).suite == suite) {
            sum += f(r);
            ++n;
        }
    }
    return n ? sum / n : 0.0;
}

} // namespace nwsim::bench

#endif // NWSIM_BENCH_BENCH_UTIL_HH
