/** Reproduces Tables 2 and 3: the benchmark suites (proxy kernels). */

#include "bench_util.hh"

using namespace nwsim;

int
main()
{
    bench::header("Tables 2 & 3", "SPECint95 and MediaBench workloads");
    std::cout << "(Original binaries are unavailable; each benchmark is "
                 "a deterministic\nproxy kernel in the nwsim ISA — see "
                 "DESIGN.md substitution table.)\n\n";
    Table t({"benchmark", "suite", "description"});
    for (const Workload &w : allWorkloads())
        t.addRow({w.name, w.suite, w.description});
    t.print();
    return 0;
}
