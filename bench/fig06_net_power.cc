/**
 * Reproduces Figure 6: net power saved per cycle by operand-based clock
 * gating — savings at 16 bits, savings at 33 bits, minus the
 * zero-detect/mux overhead (all mW per cycle).
 */

#include "bench_util.hh"

using namespace nwsim;

int
main()
{
    bench::header("Figure 6", "net power saved by clock gating (mW/cycle)");
    const auto results = bench::runAll(presets::baseline(), "baseline");
    Table t({"benchmark", "suite", "saved@16", "saved@33", "overhead",
             "net saved"});
    for (const RunResult &r : results) {
        const double cyc = static_cast<double>(r.core.cycles);
        t.addRow({r.workload, workloadByName(r.workload).suite,
                  Table::num(r.gating.saved16MwSum / cyc, 1),
                  Table::num(r.gating.saved33MwSum / cyc, 1),
                  Table::num(r.gating.overheadMwSum / cyc, 1),
                  Table::num(r.gating.netSavedMwSum() / cyc, 1)});
    }
    t.print();
    const double min_net = [&] {
        double m = 1e18;
        for (const RunResult &r : results)
            m = std::min(m, r.netSavedPowerPerCycle());
        return m;
    }();
    std::cout << "\nShape checks (paper): zero-detect overhead is small "
                 "and nearly constant;\nnet savings positive for every "
                 "benchmark (min measured: "
              << Table::num(min_net, 1)
              << " mW/cycle);\nijpeg and go save the most among "
                 "SPECint95; media saves more than spec on average.\n";
    return 0;
}
