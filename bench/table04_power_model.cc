/** Reproduces Table 4: functional-unit power at 3.3V / 500MHz (mW). */

#include "power/device_model.hh"

#include "bench_util.hh"

using namespace nwsim;

int
main()
{
    bench::header("Table 4", "estimated functional-unit power (mW)");
    DeviceModel m;
    Table t({"device", "32-bit", "48-bit", "64-bit", "paper 32/48/64"});
    const struct
    {
        const char *name;
        DeviceClass dev;
        const char *paper;
    } rows[] = {
        {"Adder (CLA)", DeviceClass::Adder, "105 / 158 / 210"},
        {"Booth Multiplier", DeviceClass::Multiplier,
         "1050 / 1580 / 2100"},
        {"Bit-Wise Logic", DeviceClass::BitwiseLogic, "5.8 / 8.7 / 11.7"},
        {"Shifter", DeviceClass::Shifter, "4.4 / 6.6 / 8.8"},
    };
    for (const auto &r : rows) {
        t.addRow({r.name, Table::num(m.power(r.dev, 32), 1),
                  Table::num(m.power(r.dev, 48), 1),
                  Table::num(m.power(r.dev, 64), 1), r.paper});
    }
    t.addRow({"Zero-Detect", "", Table::num(m.zeroDetectPower(), 1), "",
              "4.2"});
    t.addRow({"Additional Muxes", "", Table::num(m.muxPower(), 1), "",
              "3.2"});
    t.print();
    std::cout << "\nGated widths used by the optimization:\n";
    Table g({"device", "16-bit (gated)", "33-bit (gated)"});
    for (const auto &r : rows) {
        g.addRow({r.name, Table::num(m.power(r.dev, 16), 1),
                  Table::num(m.power(r.dev, 33), 1)});
    }
    g.print();
    return 0;
}
