/**
 * Ablations of the packing design choices DESIGN.md calls out:
 *  - subword lanes per ALU (2 vs the default 4);
 *  - issue-slot accounting (packed group = 1 slot vs 1 slot per inst);
 *  - replay packing on/off (replay-trap rates per benchmark).
 */

#include "bench_util.hh"

using namespace nwsim;

int
main()
{
    bench::header("Ablation", "operation-packing design choices");

    const auto base = bench::runAll(presets::baseline(), "base");

    CoreConfig lanes2 = presets::packing(true);
    lanes2.packing.lanesPerAlu = 2;
    CoreConfig lanes4 = presets::packing(true);
    CoreConfig per_slot = presets::packing(true);
    per_slot.packing.groupCountsOneSlot = false;
    CoreConfig strict = presets::packing(false);

    const auto r_lanes2 = bench::runAll(lanes2, "lanes=2");
    const auto r_lanes4 = bench::runAll(lanes4, "lanes=4");
    const auto r_slot = bench::runAll(per_slot, "per-inst-slots");
    const auto r_strict = bench::runAll(strict, "no-replay");

    Table t({"benchmark", "lanes=2 %", "lanes=4 %", "per-inst-slot %",
             "no-replay %", "replay traps/1k packed"});
    for (size_t i = 0; i < base.size(); ++i) {
        const auto &l4 = r_lanes4[i].packing;
        const double traps =
            l4.packedInsts
                ? 1000.0 * static_cast<double>(l4.replayTraps) /
                      static_cast<double>(l4.packedInsts)
                : 0.0;
        t.addRow({base[i].workload,
                  Table::num(speedupPercent(base[i], r_lanes2[i]), 1),
                  Table::num(speedupPercent(base[i], r_lanes4[i]), 1),
                  Table::num(speedupPercent(base[i], r_slot[i]), 1),
                  Table::num(speedupPercent(base[i], r_strict[i]), 1),
                  Table::num(traps, 1)});
    }
    t.print();
    std::cout << "\nExpected shape: lanes=4 >= lanes=2; one-slot-per-"
                 "group accounting >= per-instruction\n(issue bandwidth "
                 "is part of the win); replay adds speedup on "
                 "address-heavy codes\nat a small trap rate.\n";
    return 0;
}
