/**
 * Reproduces Figure 10 (plus the Section 5.4 8-wide-decode numbers):
 * percent speedup from operation packing over the matching baseline,
 * with perfect and realistic (combining) branch prediction, at decode
 * widths 4 and 8, with and without replay packing.
 *
 * Paper averages (replay packing, 100M-instruction windows):
 *   decode 4: SPECint95 7.1% perfect / 4.3% realistic;
 *             media ~7.6% perfect / 8.0% realistic
 *   decode 8: SPECint95 9.9% perfect / 6.2% realistic;
 *             media 10.3% perfect / 10.4% realistic
 */

#include "bench_util.hh"

using namespace nwsim;

namespace
{

struct SweepPoint
{
    std::vector<RunResult> base;
    std::vector<RunResult> packStrict;
    std::vector<RunResult> packReplay;
};

SweepPoint
sweep(bool perfect, bool decode8)
{
    auto mk = [&](CoreConfig cfg) {
        return decode8 ? presets::decode8(cfg) : cfg;
    };
    SweepPoint p;
    p.base = bench::runAll(mk(presets::baseline(perfect)), "base");
    p.packStrict =
        bench::runAll(mk(presets::packing(false, perfect)), "pack");
    p.packReplay =
        bench::runAll(mk(presets::packing(true, perfect)), "pack+replay");
    return p;
}

void
printSweep(const char *title, const SweepPoint &perfect,
           const SweepPoint &realistic)
{
    std::cout << "\n--- " << title << " ---\n";
    Table t({"benchmark", "suite", "pack perf%", "pack real%",
             "+replay perf%", "+replay real%"});
    for (size_t i = 0; i < perfect.base.size(); ++i) {
        t.addRow({perfect.base[i].workload,
                  workloadByName(perfect.base[i].workload).suite,
                  Table::num(speedupPercent(perfect.base[i],
                                            perfect.packStrict[i]),
                             1),
                  Table::num(speedupPercent(realistic.base[i],
                                            realistic.packStrict[i]),
                             1),
                  Table::num(speedupPercent(perfect.base[i],
                                            perfect.packReplay[i]),
                             1),
                  Table::num(speedupPercent(realistic.base[i],
                                            realistic.packReplay[i]),
                             1)});
    }
    t.print();

    for (const char *suite : {"spec", "media"}) {
        double pp = 0, pr = 0, rp = 0, rr = 0;
        unsigned n = 0;
        for (size_t i = 0; i < perfect.base.size(); ++i) {
            if (workloadByName(perfect.base[i].workload).suite != suite)
                continue;
            pp += speedupPercent(perfect.base[i], perfect.packReplay[i]);
            rp += speedupPercent(realistic.base[i],
                                 realistic.packReplay[i]);
            pr += speedupPercent(perfect.base[i],
                                 perfect.packStrict[i]);
            rr += speedupPercent(realistic.base[i],
                                 realistic.packStrict[i]);
            ++n;
        }
        std::cout << "  " << suite << " average (+replay): perfect "
                  << Table::num(pp / n, 1) << "%, realistic "
                  << Table::num(rp / n, 1) << "%   (strict: perfect "
                  << Table::num(pr / n, 1) << "%, realistic "
                  << Table::num(rr / n, 1) << "%)\n";
    }
}

} // namespace

int
main()
{
    bench::header("Figure 10 (+ §5.4 text)",
                  "speedup due to operation packing");

    const SweepPoint p4 = sweep(true, false);
    const SweepPoint r4 = sweep(false, false);
    printSweep("decode width 4 (Figure 10)", p4, r4);
    std::cout << "  paper averages (decode 4): spec 7.1% perfect / "
                 "4.3% realistic; media ~7.6% / 8.0%\n";

    const SweepPoint p8 = sweep(true, true);
    const SweepPoint r8 = sweep(false, true);
    printSweep("decode width 8 (Section 5.4)", p8, r8);
    std::cout << "  paper averages (decode 8): spec 9.9% perfect / "
                 "6.2% realistic; media 10.3% / 10.4%\n";
    return 0;
}
