/**
 * Reproduces Figure 10 (plus the Section 5.4 8-wide-decode numbers):
 * percent speedup from operation packing over the matching baseline,
 * with perfect and realistic (combining) branch prediction, at decode
 * widths 4 and 8, with and without replay packing.
 *
 * The full 14-workload x 12-config grid runs as one parallel campaign
 * (src/exp/); scale workers with NWSIM_JOBS.
 *
 * Paper averages (replay packing, 100M-instruction windows):
 *   decode 4: SPECint95 7.1% perfect / 4.3% realistic;
 *             media ~7.6% perfect / 8.0% realistic
 *   decode 8: SPECint95 9.9% perfect / 6.2% realistic;
 *             media 10.3% perfect / 10.4% realistic
 */

#include "bench_util.hh"
#include "exp/campaign.hh"

using namespace nwsim;

namespace
{

/** Compose a config spec for one grid point. */
std::string
spec(const std::string &base, bool decode8, bool perfect)
{
    return base + (decode8 ? "+decode8" : "") +
           (perfect ? "+perfect" : "");
}

void
printSweep(const char *title, const exp::ResultSet &rs,
           const std::vector<std::string> &names, bool decode8)
{
    std::cout << "\n--- " << title << " ---\n";
    auto speedup = [&](const std::string &w, const std::string &base,
                       bool perfect) {
        return speedupPercent(
            rs.get(w, spec("baseline", decode8, perfect)),
            rs.get(w, spec(base, decode8, perfect)));
    };

    Table t({"benchmark", "suite", "pack perf%", "pack real%",
             "+replay perf%", "+replay real%"});
    for (const std::string &w : names) {
        t.addRow({w, workloadByName(w).suite,
                  Table::num(speedup(w, "packing", true), 1),
                  Table::num(speedup(w, "packing", false), 1),
                  Table::num(speedup(w, "packing-replay", true), 1),
                  Table::num(speedup(w, "packing-replay", false), 1)});
    }
    t.print();

    for (const char *suite : {"spec", "media"}) {
        double pp = 0, pr = 0, rp = 0, rr = 0;
        unsigned n = 0;
        for (const std::string &w : names) {
            if (workloadByName(w).suite != suite)
                continue;
            pp += speedup(w, "packing-replay", true);
            rp += speedup(w, "packing-replay", false);
            pr += speedup(w, "packing", true);
            rr += speedup(w, "packing", false);
            ++n;
        }
        std::cout << "  " << suite << " average (+replay): perfect "
                  << Table::num(pp / n, 1) << "%, realistic "
                  << Table::num(rp / n, 1) << "%   (strict: perfect "
                  << Table::num(pr / n, 1) << "%, realistic "
                  << Table::num(rr / n, 1) << "%)\n";
    }
}

} // namespace

int
main()
{
    bench::header("Figure 10 (+ §5.4 text)",
                  "speedup due to operation packing");

    std::vector<std::string> names;
    for (const Workload &w : allWorkloads())
        names.push_back(w.name);

    // Whole grid as one campaign: {base, packing, packing-replay} x
    // {decode 4, 8} x {perfect, realistic} for every workload.
    std::vector<std::string> configs;
    for (bool decode8 : {false, true})
        for (bool perfect : {true, false})
            for (const char *base :
                 {"baseline", "packing", "packing-replay"})
                configs.push_back(spec(base, decode8, perfect));

    const exp::Campaign campaign =
        exp::Campaign::grid(names, configs, resolveRunOptions());
    exp::CampaignOptions copts;
    copts.progress = &std::cerr;
    const exp::ResultSet rs = campaign.run(copts);

    printSweep("decode width 4 (Figure 10)", rs, names, false);
    std::cout << "  paper averages (decode 4): spec 7.1% perfect / "
                 "4.3% realistic; media ~7.6% / 8.0%\n";

    printSweep("decode width 8 (Section 5.4)", rs, names, true);
    std::cout << "  paper averages (decode 8): spec 9.9% perfect / "
                 "6.2% realistic; media 10.3% / 10.4%\n";
    return 0;
}
