/**
 * Ablations of the clock-gating design choices:
 *  - dropping the 33-bit control signal (Figure 5's motivation);
 *  - omitting zero-detect on the load path (Section 4.2's 13.1% /
 *    1.5% discussion).
 */

#include "bench_util.hh"

using namespace nwsim;

int
main()
{
    bench::header("Ablation", "clock-gating design choices");

    CoreConfig full = presets::baseline();
    CoreConfig no33 = presets::baseline();
    no33.gating.gate33 = false;
    CoreConfig noload = presets::baseline();
    noload.gating.zeroDetectOnLoads = false;

    const auto r_full = bench::runAll(full, "full");
    const auto r_no33 = bench::runAll(no33, "no-33bit");
    const auto r_nold = bench::runAll(noload, "no-load-zd");

    Table t({"benchmark", "suite", "full red%", "no-33bit red%",
             "no-load-zd red%"});
    for (size_t i = 0; i < r_full.size(); ++i) {
        t.addRow({r_full[i].workload,
                  workloadByName(r_full[i].workload).suite,
                  Table::num(r_full[i].gating.reductionPercent(), 1),
                  Table::num(r_no33[i].gating.reductionPercent(), 1),
                  Table::num(r_nold[i].gating.reductionPercent(), 1)});
    }
    t.print();

    for (const char *suite : {"spec", "media"}) {
        const double f = bench::suiteMean(
            r_full, suite,
            [](const RunResult &r) { return r.gating.reductionPercent(); });
        const double n33 = bench::suiteMean(
            r_no33, suite,
            [](const RunResult &r) { return r.gating.reductionPercent(); });
        const double nld = bench::suiteMean(
            r_nold, suite,
            [](const RunResult &r) { return r.gating.reductionPercent(); });
        std::cout << "  " << suite << " averages: full "
                  << Table::num(f, 1) << "%, without 33-bit signal "
                  << Table::num(n33, 1)
                  << "%, without load zero-detect " << Table::num(nld, 1)
                  << "%\n";
    }
    std::cout << "\nExpected shape: the 33-bit signal matters most for "
                 "address-heavy spec codes (go);\nload zero-detect "
                 "matters more for spec (paper: 13.1% of gated ops) "
                 "than media (1.5%).\n";
    return 0;
}
