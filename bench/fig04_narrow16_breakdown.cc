/**
 * Reproduces Figure 4: percentage (and operation type) of executions
 * with both operands <= 16 bits, SPECint95 + MediaBench.
 */

#include "bench_util.hh"

using namespace nwsim;

int
main()
{
    bench::header("Figure 4", "operations with both operands <= 16 bits");
    const auto results = bench::runAll(presets::baseline(), "baseline");
    Table t({"benchmark", "suite", "arith%", "logic%", "shift%",
             "mult%", "total%"});
    for (const RunResult &r : results) {
        const WidthProfiler &p = r.profiler;
        t.addRow({r.workload, workloadByName(r.workload).suite,
                  Table::num(p.narrow16Percent(WidthCategory::Arithmetic), 1),
                  Table::num(p.narrow16Percent(WidthCategory::Logical), 1),
                  Table::num(p.narrow16Percent(WidthCategory::Shift), 1),
                  Table::num(p.narrow16Percent(WidthCategory::Multiply), 1),
                  Table::num(p.narrow16TotalPercent(), 1)});
    }
    t.print();
    const double spec = bench::suiteMean(
        results, "spec",
        [](const RunResult &r) { return r.profiler.narrow16TotalPercent(); });
    const double media = bench::suiteMean(
        results, "media",
        [](const RunResult &r) { return r.profiler.narrow16TotalPercent(); });
    std::cout << "\nSuite averages: spec " << Table::num(spec, 1)
              << "%, media " << Table::num(media, 1)
              << "% (paper: roughly half of all operations; arithmetic "
                 "and logical dominate)\n";
    return 0;
}
