/**
 * Reproduces Figure 11: IPC of (a) the 4-issue/4-ALU baseline, (b) the
 * baseline with operation packing, and (c) an 8-issue/8-ALU machine —
 * all with the combining predictor and decode/commit width 4.
 *
 * Paper shape: packing closes much of the gap to the costly
 * 8-issue/8-ALU machine, most completely on ijpeg, vortex, and the
 * media benchmarks.
 */

#include "bench_util.hh"

using namespace nwsim;

int
main()
{
    bench::header("Figure 11", "IPC: baseline vs packing vs 8-issue");
    const auto base = bench::runAll(presets::baseline(), "baseline");
    const auto pack = bench::runAll(presets::packing(true), "packing");
    const auto wide = bench::runAll(presets::issue8(), "8-issue/8-ALU");

    Table t({"benchmark", "suite", "baseline", "packing", "8-issue",
             "gap closed"});
    double closed_sum = 0.0;
    unsigned closed_n = 0;
    for (size_t i = 0; i < base.size(); ++i) {
        const double b = base[i].ipc();
        const double p = pack[i].ipc();
        const double w = wide[i].ipc();
        std::string closed = "-";
        if (w - b > 1e-3) {
            const double frac = 100.0 * (p - b) / (w - b);
            closed = Table::num(frac, 0) + "%";
            closed_sum += frac;
            ++closed_n;
        }
        t.addRow({base[i].workload, workloadByName(base[i].workload).suite,
                  Table::num(b, 2), Table::num(p, 2), Table::num(w, 2),
                  closed});
    }
    t.print();
    if (closed_n) {
        std::cout << "\nAverage fraction of the 8-issue/8-ALU gap "
                     "closed by packing: "
                  << Table::num(closed_sum / closed_n, 0) << "%\n";
    }
    return 0;
}
