/**
 * Reproduces Figure 11: IPC of (a) the 4-issue/4-ALU baseline, (b) the
 * baseline with operation packing, and (c) an 8-issue/8-ALU machine —
 * all with the combining predictor and decode/commit width 4. The
 * 14x3 grid runs as one parallel campaign (src/exp/).
 *
 * Paper shape: packing closes much of the gap to the costly
 * 8-issue/8-ALU machine, most completely on ijpeg, vortex, and the
 * media benchmarks.
 */

#include "bench_util.hh"
#include "exp/campaign.hh"

using namespace nwsim;

int
main()
{
    bench::header("Figure 11", "IPC: baseline vs packing vs 8-issue");

    std::vector<std::string> names;
    for (const Workload &w : allWorkloads())
        names.push_back(w.name);

    const exp::Campaign campaign = exp::Campaign::grid(
        names, {"baseline", "packing-replay", "issue8"},
        resolveRunOptions());
    exp::CampaignOptions copts;
    copts.progress = &std::cerr;
    const exp::ResultSet rs = campaign.run(copts);

    Table t({"benchmark", "suite", "baseline", "packing", "8-issue",
             "gap closed"});
    double closed_sum = 0.0;
    unsigned closed_n = 0;
    for (const std::string &w : names) {
        const double b = rs.get(w, "baseline").ipc();
        const double p = rs.get(w, "packing-replay").ipc();
        const double wide = rs.get(w, "issue8").ipc();
        std::string closed = "-";
        if (wide - b > 1e-3) {
            const double frac = 100.0 * (p - b) / (wide - b);
            closed = Table::num(frac, 0) + "%";
            closed_sum += frac;
            ++closed_n;
        }
        t.addRow({w, workloadByName(w).suite, Table::num(b, 2),
                  Table::num(p, 2), Table::num(wide, 2), closed});
    }
    t.print();
    if (closed_n) {
        std::cout << "\nAverage fraction of the 8-issue/8-ALU gap "
                     "closed by packing: "
                  << Table::num(closed_sum / closed_n, 0) << "%\n";
    }
    return 0;
}
