/**
 * google-benchmark microbenchmarks of the simulator's hot components:
 * width detection, the combining predictor, the cache model, functional
 * simulation, and end-to-end out-of-order simulation throughput.
 */

#include <benchmark/benchmark.h>

#include "bpred/combining.hh"
#include "common/rng.hh"
#include "core/width.hh"
#include "driver/presets.hh"
#include "func/func_sim.hh"
#include "mem/cache.hh"
#include "pipeline/core.hh"
#include "workloads/kernels.hh"

namespace
{

using namespace nwsim;

void
BM_EffectiveWidth(benchmark::State &state)
{
    SplitMix64 rng(1);
    std::vector<u64> values(4096);
    for (auto &v : values)
        v = rng.next() >> (rng.next() & 63);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(effectiveWidth(values[i]));
        benchmark::DoNotOptimize(isNarrow16(values[i]));
        i = (i + 1) & 4095;
    }
}
BENCHMARK(BM_EffectiveWidth);

void
BM_PredictorPredictResolve(benchmark::State &state)
{
    CombiningPredictor bp{BPredConfig{}};
    Inst b;
    b.op = Opcode::BNE;
    b.ra = 1;
    b.disp = 4;
    SplitMix64 rng(2);
    for (auto _ : state) {
        const Addr pc = 0x1000 + (rng.below(256) << 2);
        const bool taken = rng.below(3) != 0;
        const Prediction p = bp.predict(pc, b);
        if (p.taken != taken)
            bp.repair(b, p, taken);
        bp.resolve(pc, b, p, taken,
                   taken ? b.branchTarget(pc) : pc + 4);
    }
}
BENCHMARK(BM_PredictorPredictResolve);

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache({"bm", 64 * 1024, 2, 32, 1});
    SplitMix64 rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(rng.below(1 << 20)));
}
BENCHMARK(BM_CacheAccess);

void
BM_FunctionalSim(benchmark::State &state)
{
    const Program prog = makeCompress(1000).program();
    SparseMemory mem;
    prog.load(mem);
    FuncSim sim(mem, prog.entry);
    for (auto _ : state) {
        sim.step();
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FunctionalSim);

void
BM_OutOfOrderCore(benchmark::State &state)
{
    const Program prog = makeCompress(1000).program();
    SparseMemory mem;
    prog.load(mem);
    OutOfOrderCore core(presets::baseline(), mem, prog.entry);
    for (auto _ : state) {
        core.tick();
        benchmark::ClobberMemory();
    }
    state.counters["insts/cycle"] = benchmark::Counter(
        static_cast<double>(core.stats().committed),
        benchmark::Counter::kIsRate);
    state.SetItemsProcessed(
        static_cast<i64>(core.stats().committed));
}
BENCHMARK(BM_OutOfOrderCore);

void
BM_OutOfOrderCoreWithPacking(benchmark::State &state)
{
    const Program prog = makeGsmEncode(1000).program();
    SparseMemory mem;
    prog.load(mem);
    OutOfOrderCore core(presets::packing(true), mem, prog.entry);
    for (auto _ : state) {
        core.tick();
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(
        static_cast<i64>(core.stats().committed));
}
BENCHMARK(BM_OutOfOrderCoreWithPacking);

void
BM_FastForward(benchmark::State &state)
{
    const Program prog = makeCompress(1000).program();
    SparseMemory mem;
    prog.load(mem);
    OutOfOrderCore core(presets::baseline(), mem, prog.entry);
    u64 total = 0;
    for (auto _ : state)
        total += core.fastForward(1000);
    state.SetItemsProcessed(static_cast<i64>(total));
}
BENCHMARK(BM_FastForward);

void
BM_WorkloadBuildAndAssemble(benchmark::State &state)
{
    for (auto _ : state) {
        const Program prog = makeGo(1).program();
        benchmark::DoNotOptimize(prog.imageBytes());
    }
}
BENCHMARK(BM_WorkloadBuildAndAssemble);

void
BM_SparseMemoryReadWrite(benchmark::State &state)
{
    SparseMemory mem;
    SplitMix64 rng(9);
    for (auto _ : state) {
        const Addr a = rng.below(1 << 22);
        mem.write(a, 8, rng.next());
        benchmark::DoNotOptimize(mem.read(a ^ 0x40, 8));
    }
}
BENCHMARK(BM_SparseMemoryReadWrite);

} // namespace

BENCHMARK_MAIN();
