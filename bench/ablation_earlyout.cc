/**
 * Extension ablation: PowerPC-603-style early-out multiply (paper
 * Section 2.3) — a third consumer of the operand width tags. Narrow
 * 16x16 multiplies complete in 1 cycle instead of 3.
 *
 * Expected shape: multiply-heavy media codecs (gsm) benefit most; codes
 * with few multiplies are unchanged.
 */

#include "bench_util.hh"

using namespace nwsim;

int
main()
{
    bench::header("Extension ablation",
                  "early-out multiply (paper Section 2.3)");
    const auto base = bench::runAll(presets::baseline(), "base");
    CoreConfig early_cfg = presets::baseline();
    early_cfg.earlyOutMultiply = true;
    const auto early = bench::runAll(early_cfg, "early-out");

    Table t({"benchmark", "suite", "base IPC", "early-out IPC",
             "speedup"});
    for (size_t i = 0; i < base.size(); ++i) {
        t.addRow({base[i].workload,
                  workloadByName(base[i].workload).suite,
                  Table::num(base[i].ipc(), 2),
                  Table::num(early[i].ipc(), 2),
                  Table::num(speedupPercent(base[i], early[i]), 1) +
                      "%"});
    }
    t.print();
    const double spec = bench::suiteMean(
        base, "spec", [&](const RunResult &) { return 0.0; });
    (void)spec;
    std::cout << "\nShape check: gsm (narrow multiply-accumulate "
                 "kernels) gains the most;\ninteger codes with rare "
                 "multiplies are unchanged.\n";
    return 0;
}
