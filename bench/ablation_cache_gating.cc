/**
 * Extension ablation: narrow-width gating of the D-cache data path —
 * the paper's closing future-work suggestion ("reducing power ... in
 * the cache memories"), driven by the same zero-detect width tags.
 */

#include "bench_util.hh"

using namespace nwsim;

int
main()
{
    bench::header("Extension ablation",
                  "cache data-path narrow-width gating (paper §6)");
    const RunOptions opts = resolveRunOptions();
    Table t({"benchmark", "suite", "accesses", "gated16%", "gated33%",
             "data-path power cut"});
    double spec_sum = 0, media_sum = 0;
    unsigned spec_n = 0, media_n = 0;
    for (const Workload &w : allWorkloads()) {
        SparseMemory mem;
        const Program prog = w.program();
        prog.load(mem);
        OutOfOrderCore core(presets::baseline(), mem, prog.entry);
        core.fastForward(opts.warmupInsts);
        core.resetStats();
        core.run(opts.measureInsts);
        const CacheGatingStats &s = core.cacheGating().stats();
        const double a = static_cast<double>(s.accesses);
        t.addRow({w.name, w.suite, std::to_string(s.accesses),
                  Table::num(a ? 100.0 * s.gated16 / a : 0.0, 1),
                  Table::num(a ? 100.0 * s.gated33 / a : 0.0, 1),
                  Table::num(s.reductionPercent(), 1) + "%"});
        if (w.suite == "spec") {
            spec_sum += s.reductionPercent();
            ++spec_n;
        } else {
            media_sum += s.reductionPercent();
            ++media_n;
        }
    }
    t.print();
    std::cout << "\nSuite averages: spec "
              << Table::num(spec_sum / spec_n, 1) << "%, media "
              << Table::num(media_sum / media_n, 1)
              << "% of D-cache data-path power\n"
              << "(the fixed decode/tag power is untouched; this gates "
                 "only the width-dependent portion)\n";
    return 0;
}
