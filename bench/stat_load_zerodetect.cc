/**
 * Reproduces the Section 4.2 statistic: the share of power-saving
 * (gated) operations with at least one operand coming directly from a
 * load — the operations that would be lost if the design omitted
 * zero-detect on the load path. Paper: 13.1% for SPECint95, 1.5% for
 * the media benchmarks.
 */

#include "bench_util.hh"

using namespace nwsim;

int
main()
{
    bench::header("Section 4.2 statistic",
                  "gated ops with a load-sourced operand");
    const auto results = bench::runAll(presets::baseline(), "baseline");
    Table t({"benchmark", "suite", "load-sourced gated ops"});
    for (const RunResult &r : results) {
        t.addRow({r.workload, workloadByName(r.workload).suite,
                  Table::num(r.gating.loadSourcedPercent(), 1) + "%"});
    }
    t.print();
    const double spec = bench::suiteMean(
        results, "spec",
        [](const RunResult &r) { return r.gating.loadSourcedPercent(); });
    const double media = bench::suiteMean(
        results, "media",
        [](const RunResult &r) { return r.gating.loadSourcedPercent(); });
    std::cout << "\nSuite averages: spec " << Table::num(spec, 1)
              << "% (paper 13.1%), media " << Table::num(media, 1)
              << "% (paper 1.5%)\n"
              << "Shape check: media depends far less on load "
                 "zero-detect than spec.\n";
    return 0;
}
