/**
 * Reproduces Figure 5: percentage (and operation type) of executions
 * with both operands <= 33 bits — the address-calculation population
 * that motivates the second clock-gating control signal.
 */

#include "bench_util.hh"

using namespace nwsim;

int
main()
{
    bench::header("Figure 5", "operations with both operands <= 33 bits");
    const auto results = bench::runAll(presets::baseline(), "baseline");
    Table t({"benchmark", "suite", "arith%", "logic%", "shift%",
             "mult%", "total%", "gain vs 16-bit"});
    for (const RunResult &r : results) {
        const WidthProfiler &p = r.profiler;
        t.addRow({r.workload, workloadByName(r.workload).suite,
                  Table::num(p.narrow33Percent(WidthCategory::Arithmetic), 1),
                  Table::num(p.narrow33Percent(WidthCategory::Logical), 1),
                  Table::num(p.narrow33Percent(WidthCategory::Shift), 1),
                  Table::num(p.narrow33Percent(WidthCategory::Multiply), 1),
                  Table::num(p.narrow33TotalPercent(), 1),
                  "+" + Table::num(p.narrow33TotalPercent() -
                                       p.narrow16TotalPercent(),
                                   1)});
    }
    t.print();
    std::cout << "\nShape check (paper: the 33-bit signal captures the "
                 "address-arithmetic\npopulation missed at 16 bits, "
                 "especially for go/vortex-style pointer codes)\n";
    return 0;
}
