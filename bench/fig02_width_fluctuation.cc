/**
 * Reproduces Figure 2: percentage of static instructions (PC values)
 * whose operand precision crosses the 16-bit boundary within a single
 * run, under perfect vs realistic branch prediction.
 *
 * Paper shape: realistic prediction fluctuates more than perfect,
 * because wrong paths execute with markedly different operand values.
 */

#include "bench_util.hh"

using namespace nwsim;

int
main()
{
    bench::header("Figure 2",
                  "per-PC operand-width fluctuation across a run");
    const auto perfect =
        bench::runSuite("spec", presets::baseline(true), "perfect-bp");
    const auto realistic =
        bench::runSuite("spec", presets::baseline(false), "combining-bp");

    Table t({"benchmark", "perfect bp (%)", "realistic bp (%)",
             "delta"});
    double dsum = 0.0;
    for (size_t i = 0; i < perfect.size(); ++i) {
        const double p = perfect[i].profiler.fluctuationPercent();
        const double r = realistic[i].profiler.fluctuationPercent();
        t.addRow({perfect[i].workload, Table::num(p, 1),
                  Table::num(r, 1), Table::num(r - p, 1)});
        dsum += r - p;
    }
    t.print();
    std::cout << "\nShape check (paper: realistic >= perfect for every "
                 "benchmark):\n  average delta: +"
              << Table::num(dsum / perfect.size(), 1) << " points\n";
    return 0;
}
