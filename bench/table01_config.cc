/** Reproduces Table 1: baseline configuration of the simulated CPU. */

#include "bench_util.hh"

using namespace nwsim;

int
main()
{
    bench::header("Table 1", "baseline configuration");
    const CoreConfig c = presets::baseline();
    Table t({"parameter", "value"});
    t.addRow({"RUU size", std::to_string(c.ruuSize) + " instructions"});
    t.addRow({"LSQ size", std::to_string(c.lsqSize)});
    t.addRow({"Fetch queue size",
              std::to_string(c.fetchQueueSize) + " instructions"});
    t.addRow({"Fetch width", std::to_string(c.fetchWidth) + "/cycle"});
    t.addRow({"Decode width", std::to_string(c.decodeWidth) + "/cycle"});
    t.addRow({"Issue width",
              std::to_string(c.issueWidth) + "/cycle (out-of-order)"});
    t.addRow({"Commit width",
              std::to_string(c.commitWidth) + "/cycle (in-order)"});
    t.addRow({"Functional units",
              std::to_string(c.numAlus) + " int ALUs, " +
                  std::to_string(c.numMultDiv) + " int mult/div"});
    t.addRow({"Branch predictor",
              "combining: " + std::to_string(c.bpred.selectorEntries) +
                  " 2-bit selector, " +
                  std::to_string(c.bpred.globalHistBits) +
                  "-bit history; " +
                  std::to_string(c.bpred.localHistEntries) +
                  " 3-bit local, " +
                  std::to_string(c.bpred.localHistBits) +
                  "-bit history; " +
                  std::to_string(c.bpred.globalEntries) +
                  " 2-bit global"});
    t.addRow({"BTB", std::to_string(c.bpred.btbEntries) + "-entry, " +
                         std::to_string(c.bpred.btbAssoc) + "-way"});
    t.addRow({"Return-address stack",
              std::to_string(c.bpred.rasEntries) + "-entry"});
    t.addRow({"Mispredict penalty",
              std::to_string(c.mispredictPenalty) + " cycles"});
    t.addRow({"L1 D-cache",
              std::to_string(c.mem.l1d.sizeBytes / 1024) + "K, " +
                  std::to_string(c.mem.l1d.assoc) + "-way, " +
                  std::to_string(c.mem.l1d.blockBytes) + "B blocks, " +
                  std::to_string(c.mem.l1d.hitLatency) + " cycle"});
    t.addRow({"L1 I-cache",
              std::to_string(c.mem.l1i.sizeBytes / 1024) + "K, " +
                  std::to_string(c.mem.l1i.assoc) + "-way, " +
                  std::to_string(c.mem.l1i.blockBytes) + "B blocks, " +
                  std::to_string(c.mem.l1i.hitLatency) + " cycle"});
    t.addRow({"L2",
              "unified, " +
                  std::to_string(c.mem.l2.sizeBytes / (1024 * 1024)) +
                  "M, " + std::to_string(c.mem.l2.assoc) + "-way, " +
                  std::to_string(c.mem.l2.blockBytes) + "B blocks, " +
                  std::to_string(c.mem.l2.hitLatency) + "-cycle"});
    t.addRow({"Memory",
              std::to_string(c.mem.memoryLatency) + " cycles"});
    t.addRow({"TLBs", std::to_string(c.mem.dtlb.entries) +
                          " entry, fully assoc., " +
                          std::to_string(c.mem.dtlb.missLatency) +
                          "-cycle miss"});
    t.print();
    return 0;
}
