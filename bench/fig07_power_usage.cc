/**
 * Reproduces Figure 7: integer-unit power per cycle, baseline vs the
 * operand-based clock-gating optimization.
 *
 * Paper headline: 54.1% average reduction for SPECint95, 57.9% for the
 * media benchmarks.
 */

#include "bench_util.hh"

using namespace nwsim;

int
main()
{
    bench::header("Figure 7", "power usage of the integer unit (mW/cycle)");
    const auto results = bench::runAll(presets::baseline(), "baseline");
    Table t({"benchmark", "suite", "baseline", "gated", "reduction"});
    for (const RunResult &r : results) {
        t.addRow({r.workload, workloadByName(r.workload).suite,
                  Table::num(r.baselinePowerPerCycle(), 1),
                  Table::num(r.optimizedPowerPerCycle(), 1),
                  Table::num(r.gating.reductionPercent(), 1) + "%"});
    }
    t.print();

    const double spec = bench::suiteMean(
        results, "spec",
        [](const RunResult &r) { return r.gating.reductionPercent(); });
    const double media = bench::suiteMean(
        results, "media",
        [](const RunResult &r) { return r.gating.reductionPercent(); });
    std::cout << "\nAverage integer-unit power reduction:\n"
              << "  SPECint95 proxies: " << Table::num(spec, 1)
              << "%   (paper: 54.1%)\n"
              << "  MediaBench proxies: " << Table::num(media, 1)
              << "%   (paper: 57.9%)\n"
              << "\nContext (paper Section 4.4): with the integer unit "
                 "at ~10% of chip power\nthis is a "
              << Table::num(spec / 10, 1)
              << "% full-chip saving; at 20-40% (DSP/EPIC-style "
                 "control) it approaches "
              << Table::num(spec * 0.4, 1) << "%.\n";
    return 0;
}
