/**
 * Extension measurement: accuracy of a decode-time operand-width
 * predictor (PC-indexed 2-bit counters) across the suites.
 *
 * This quantifies the width locality behind Figure 2: machines that
 * cannot read operand values at decode (no execute-at-dispatch) could
 * predict narrowness with this accuracy, paying for mispredictions
 * either with a replay (false-narrow) or a lost opportunity
 * (missed-narrow).
 */

#include "bench_util.hh"

#include "pipeline/core.hh"

using namespace nwsim;

int
main()
{
    bench::header("Extension measurement",
                  "decode-time width-predictor accuracy");
    const RunOptions opts = resolveRunOptions();
    Table t({"benchmark", "suite", "accuracy", "false-narrow",
             "missed-narrow"});
    double spec_sum = 0, media_sum = 0;
    unsigned spec_n = 0, media_n = 0;
    for (const Workload &w : allWorkloads()) {
        SparseMemory mem;
        const Program prog = w.program();
        prog.load(mem);
        OutOfOrderCore core(presets::baseline(), mem, prog.entry);
        core.fastForward(opts.warmupInsts);
        core.resetStats();
        core.run(opts.measureInsts);
        const WidthPredictorStats &s = core.widthPredictor().stats();
        const double p = static_cast<double>(s.predictions);
        t.addRow({w.name, w.suite,
                  Table::num(100.0 * s.accuracy(), 1) + "%",
                  Table::num(p ? 100.0 * s.falseNarrow / p : 0.0, 1) +
                      "%",
                  Table::num(p ? 100.0 * s.missedNarrow / p : 0.0, 1) +
                      "%"});
        if (w.suite == "spec") {
            spec_sum += 100.0 * s.accuracy();
            ++spec_n;
        } else {
            media_sum += 100.0 * s.accuracy();
            ++media_n;
        }
    }
    t.print();
    std::cout << "\nSuite averages: spec "
              << Table::num(spec_sum / spec_n, 1) << "%, media "
              << Table::num(media_sum / media_n, 1) << "%\n"
              << "High accuracy = the per-PC width stability Figure 2 "
                 "measures; false-narrow\npredictions are the ones a "
                 "speculative design would pay replays for.\n";
    return 0;
}
