/**
 * Reproduces Figure 1: cumulative percentage of integer-op executions
 * whose operands are both <= the given bitwidth, SPECint95 suite.
 *
 * Paper shape: roughly 50% of operations at 16 bits, a large jump at
 * 33 bits (heap/stack address calculations).
 */

#include "bench_util.hh"

using namespace nwsim;

int
main()
{
    bench::header("Figure 1", "bitwidths for SPECint on the 64-bit core");
    const auto results =
        bench::runSuite("spec", presets::baseline(), "baseline");

    const unsigned points[] = {2,  4,  6,  8,  10, 12, 14, 16, 20,
                               24, 28, 32, 33, 36, 40, 48, 56, 64};
    std::vector<std::string> head = {"bits"};
    for (const RunResult &r : results)
        head.push_back(r.workload);
    head.push_back("average");
    Table t(head);
    for (const unsigned bits : points) {
        std::vector<std::string> row = {std::to_string(bits)};
        double sum = 0.0;
        for (const RunResult &r : results) {
            const double pct = r.profiler.cumulativePercent(bits);
            row.push_back(Table::num(pct, 1));
            sum += pct;
        }
        row.push_back(Table::num(sum / results.size(), 1));
        t.addRow(row);
    }
    t.print();

    const double at16 = bench::suiteMean(
        results, "spec",
        [](const RunResult &r) { return r.profiler.cumulativePercent(16); });
    const double at32 = bench::suiteMean(
        results, "spec",
        [](const RunResult &r) { return r.profiler.cumulativePercent(32); });
    const double at33 = bench::suiteMean(
        results, "spec",
        [](const RunResult &r) { return r.profiler.cumulativePercent(33); });
    std::cout << "\nShape check (paper: ~50% at 16 bits; large jump at "
                 "33 bits):\n"
              << "  measured average at 16 bits: " << Table::num(at16, 1)
              << "%\n"
              << "  measured jump 32 -> 33 bits: +"
              << Table::num(at33 - at32, 1) << " points\n";
    return 0;
}
