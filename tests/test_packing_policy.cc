/** Unit tests for packing legality (core/packing.hh). */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/packing.hh"

namespace nwsim
{
namespace
{

Inst
mkInst(Opcode op)
{
    Inst i;
    i.op = op;
    return i;
}

TEST(PackPolicy, StrictRequiresBothNarrowAndPackableOp)
{
    const Inst add = mkInst(Opcode::ADD);
    EXPECT_TRUE(packEligible(add, 17, 2));
    EXPECT_TRUE(packEligible(add, static_cast<u64>(-5), 100));
    EXPECT_FALSE(packEligible(add, u64{1} << 20, 2));
    EXPECT_FALSE(packEligible(add, 2, u64{1} << 20));
    // Loads/branches/multiplies never pack (paper Section 5.1: "we do
    // not attempt to pack multiply operations").
    EXPECT_FALSE(packEligible(mkInst(Opcode::LDQ), 1, 2));
    EXPECT_FALSE(packEligible(mkInst(Opcode::BEQ), 1, 2));
    EXPECT_FALSE(packEligible(mkInst(Opcode::MUL), 1, 2));
    // Logic and shift ops pack.
    EXPECT_TRUE(packEligible(mkInst(Opcode::XOR), 0xff, 0x0f));
    EXPECT_TRUE(packEligible(mkInst(Opcode::SLLI), 0xff, 3));
}

TEST(PackPolicy, PackKeysMatchAcrossImmediateForms)
{
    EXPECT_EQ(opInfo(Opcode::ADD).packKey, opInfo(Opcode::ADDI).packKey);
    EXPECT_EQ(opInfo(Opcode::SUB).packKey, opInfo(Opcode::SUBI).packKey);
    EXPECT_EQ(opInfo(Opcode::SLL).packKey, opInfo(Opcode::SLLI).packKey);
    EXPECT_NE(opInfo(Opcode::ADD).packKey, opInfo(Opcode::SUB).packKey);
}

TEST(PackPolicy, ReplayEligibilityShapes)
{
    const Inst add = mkInst(Opcode::ADD);
    const Inst sub = mkInst(Opcode::SUB);
    const u64 wide = (u64{1} << 32) + 0x500;
    // Exactly one narrow operand.
    EXPECT_TRUE(replayEligible(add, wide, 7));
    EXPECT_TRUE(replayEligible(add, 7, wide));
    EXPECT_FALSE(replayEligible(add, 7, 9));        // both narrow
    EXPECT_FALSE(replayEligible(add, wide, wide));  // both wide
    // Subtraction: only a wide minuend makes upper-bit muxing sane.
    EXPECT_TRUE(replayEligible(sub, wide, 7));
    EXPECT_FALSE(replayEligible(sub, 7, wide));
    // Non-replayPackable ops never qualify.
    EXPECT_FALSE(replayEligible(mkInst(Opcode::XOR), wide, 7));
    EXPECT_FALSE(replayEligible(mkInst(Opcode::LDQ), wide, 7));
}

TEST(PackPolicy, ReplayTrapFiresExactlyOnUpperBitChange)
{
    const Inst add = mkInst(Opcode::ADD);
    const u64 base = u64{1} << 32;
    // No carry out of the low 16 bits: no trap.
    EXPECT_FALSE(replayWouldTrap(add, base + 0x100, 0x10, 0));
    // Carry crosses: 0xffff + 1.
    EXPECT_TRUE(replayWouldTrap(add, base + 0xffff, 1, 0));
    // Negative narrow operand borrows from the upper bits.
    EXPECT_TRUE(
        replayWouldTrap(add, base + 0x10, static_cast<u64>(-0x20), 0));
    // Subtraction borrow.
    const Inst sub = mkInst(Opcode::SUB);
    EXPECT_FALSE(replayWouldTrap(sub, base + 0x100, 0x10, 0));
    EXPECT_TRUE(replayWouldTrap(sub, base + 0x10, 0x20, 0));
}

/**
 * Property: whenever the replay trap does NOT fire, the packed result
 * (wide upper bits + 16-bit lane) equals the true ALU result — i.e. the
 * hardware shortcut is architecturally invisible exactly when we say so.
 */
class ReplayProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(ReplayProperty, NoTrapImpliesExactResult)
{
    SplitMix64 rng(GetParam() * 123 + 7);
    const Opcode ops[] = {Opcode::ADD, Opcode::SUB, Opcode::ADDI,
                          Opcode::SUBI};
    u64 traps = 0, clean = 0;
    for (int i = 0; i < 20000; ++i) {
        const Inst inst = mkInst(ops[rng.below(4)]);
        u64 wide = rng.next();
        u64 narrow = static_cast<u64>(rng.range(-32768, 32767));
        u64 a = wide, b = narrow;
        if (opInfo(inst.op).packKey == PackKey::Add && rng.below(2))
            std::swap(a, b);
        if (!replayEligible(inst, a, b))
            continue;
        const u64 w = isNarrow16(a) ? b : a;
        const u64 truth = aluResult(inst, a, b, 0);
        const u64 packed = (w & ~u64{0xffff}) | (truth & 0xffff);
        if (replayWouldTrap(inst, a, b, 0)) {
            ++traps;
            EXPECT_NE(packed, truth);
        } else {
            ++clean;
            EXPECT_EQ(packed, truth);
        }
    }
    // Both outcomes occur in volume.
    EXPECT_GT(traps, 100u);
    EXPECT_GT(clean, 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayProperty, ::testing::Range(0, 6));

} // namespace
} // namespace nwsim
