/** Tests for the experiment driver: runner, presets, table printer. */

#include <gtest/gtest.h>

#include "driver/presets.hh"
#include "driver/runner.hh"
#include "driver/table.hh"
#include "workloads/kernels.hh"

namespace nwsim
{
namespace
{

TEST(Presets, Table1Baseline)
{
    const CoreConfig cfg = presets::baseline();
    EXPECT_EQ(cfg.ruuSize, 80u);
    EXPECT_EQ(cfg.lsqSize, 40u);
    EXPECT_EQ(cfg.fetchQueueSize, 8u);
    EXPECT_EQ(cfg.fetchWidth, 4u);
    EXPECT_EQ(cfg.decodeWidth, 4u);
    EXPECT_EQ(cfg.issueWidth, 4u);
    EXPECT_EQ(cfg.commitWidth, 4u);
    EXPECT_EQ(cfg.numAlus, 4u);
    EXPECT_EQ(cfg.numMultDiv, 1u);
    EXPECT_EQ(cfg.mispredictPenalty, 2u);
    EXPECT_FALSE(cfg.packing.enabled);
    // Table 1 memory hierarchy.
    EXPECT_EQ(cfg.mem.l1d.sizeBytes, 64u * 1024);
    EXPECT_EQ(cfg.mem.l1d.assoc, 2u);
    EXPECT_EQ(cfg.mem.l1d.blockBytes, 32u);
    EXPECT_EQ(cfg.mem.l2.sizeBytes, 8u * 1024 * 1024);
    EXPECT_EQ(cfg.mem.l2.assoc, 4u);
    EXPECT_EQ(cfg.mem.l2.hitLatency, 12u);
    EXPECT_EQ(cfg.mem.memoryLatency, 100u);
    EXPECT_EQ(cfg.mem.dtlb.entries, 128u);
    EXPECT_EQ(cfg.mem.dtlb.missLatency, 30u);
    // Table 1 predictor.
    EXPECT_EQ(cfg.bpred.selectorEntries, 4096u);
    EXPECT_EQ(cfg.bpred.globalHistBits, 12u);
    EXPECT_EQ(cfg.bpred.localHistEntries, 1024u);
    EXPECT_EQ(cfg.bpred.localPredBits, 3u);
    EXPECT_EQ(cfg.bpred.btbEntries, 2048u);
    EXPECT_EQ(cfg.bpred.btbAssoc, 2u);
    EXPECT_EQ(cfg.bpred.rasEntries, 32u);
}

TEST(Presets, Variants)
{
    EXPECT_TRUE(presets::packing(false).packing.enabled);
    EXPECT_FALSE(presets::packing(false).packing.replay);
    EXPECT_TRUE(presets::packing(true).packing.replay);
    EXPECT_TRUE(presets::baseline(true).perfectBPred);
    const CoreConfig d8 = presets::decode8(presets::baseline());
    EXPECT_EQ(d8.decodeWidth, 8u);
    EXPECT_EQ(d8.fetchWidth, 8u);
    EXPECT_EQ(d8.issueWidth, 4u);
    const CoreConfig i8 = presets::issue8();
    EXPECT_EQ(i8.issueWidth, 8u);
    EXPECT_EQ(i8.numAlus, 8u);
    EXPECT_EQ(i8.decodeWidth, 4u);
}

TEST(Runner, WarmupThenMeasure)
{
    const Program prog = makeCompress(14).program();
    RunOptions opts;
    opts.warmupInsts = 5000;
    opts.measureInsts = 20000;
    const RunResult r = runProgram(prog, presets::baseline(), opts,
                                   "compress", "baseline");
    EXPECT_EQ(r.workload, "compress");
    // run() stops on exact instruction boundaries.
    EXPECT_EQ(r.warmupCommitted, 5000u);
    EXPECT_EQ(r.measuredCommitted, 20000u);
    EXPECT_EQ(r.core.committed, 20000u);
    EXPECT_GT(r.core.cycles, 0u);
    EXPECT_GT(r.ipc(), 0.1);
    EXPECT_LT(r.ipc(), 4.01);
    // Power accounting populated and sane.
    EXPECT_GT(r.baselinePowerPerCycle(), 0.0);
    EXPECT_GT(r.optimizedPowerPerCycle(), 0.0);
    EXPECT_LT(r.optimizedPowerPerCycle(), r.baselinePowerPerCycle());
    EXPECT_GT(r.gating.reductionPercent(), 0.0);
    // Profiler populated.
    EXPECT_GT(r.profiler.totalOps(), 10000u);
    EXPECT_GT(r.profiler.cumulativePercent(64), 99.9);
}

TEST(Runner, SpeedupMath)
{
    RunResult base, opt;
    base.core.cycles = 1000;
    base.core.committed = 2000;
    opt.core.cycles = 800;
    opt.core.committed = 2000;
    EXPECT_NEAR(speedupPercent(base, opt), 25.0, 1e-9);
    EXPECT_NEAR(speedupPercent(base, base), 0.0, 1e-9);
}

TEST(Runner, EnvOverrides)
{
    setenv("NWSIM_WARMUP", "123", 1);
    setenv("NWSIM_MEASURE", "456", 1);
    const RunOptions opts = resolveRunOptions();
    EXPECT_EQ(opts.warmupInsts, 123u);
    EXPECT_EQ(opts.measureInsts, 456u);
    unsetenv("NWSIM_WARMUP");
    unsetenv("NWSIM_MEASURE");
    const RunOptions defaults = resolveRunOptions();
    EXPECT_EQ(defaults.warmupInsts, 50000u);
    EXPECT_EQ(defaults.measureInsts, 400000u);
}

TEST(Table, RendersCsv)
{
    Table t({"bench", "note"});
    t.addRow({"go", "plain"});
    t.addRow({"odd,name", "has \"quotes\""});
    const std::string csv = t.renderCsv();
    EXPECT_EQ(csv, "bench,note\n"
                   "go,plain\n"
                   "\"odd,name\",\"has \"\"quotes\"\"\"\n");
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"bench", "ipc", "speedup"});
    t.addRow({"ijpeg", Table::num(2.345, 2), Table::num(7.1, 1) + "%"});
    t.addRow({"go", Table::num(1.0, 2)});
    const std::string out = t.render();
    EXPECT_NE(out.find("bench"), std::string::npos);
    EXPECT_NE(out.find("2.35"), std::string::npos);
    EXPECT_NE(out.find("7.1%"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    // Three lines of content (header, rule, rows).
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

} // namespace
} // namespace nwsim
