/**
 * Tests for the cache data-path gating extension (the paper's "could be
 * extended to ... the cache memories" future work).
 */

#include "sim_test_util.hh"

#include "core/cache_gating.hh"
#include "driver/presets.hh"

namespace nwsim
{
namespace
{

TEST(CacheGating, NarrowQuadAccessGatesTo16Bits)
{
    CacheGatingModel m;
    m.recordAccess(42, 8);
    const CacheGatingStats &s = m.stats();
    EXPECT_EQ(s.accesses, 1u);
    EXPECT_EQ(s.gated16, 1u);
    EXPECT_DOUBLE_EQ(s.baselineMwSum, 100.0);
    EXPECT_DOUBLE_EQ(s.gatedMwSum, 60.0 + 40.0 * 16 / 64);
    EXPECT_DOUBLE_EQ(s.overheadMwSum, 3.2);
}

TEST(CacheGating, AddressValuedQuadGatesTo33Bits)
{
    CacheGatingModel m;
    m.recordAccess((u64{1} << 32) + 5, 8);
    EXPECT_EQ(m.stats().gated33, 1u);
    EXPECT_DOUBLE_EQ(m.stats().gatedMwSum, 60.0 + 40.0 * 33 / 64);
}

TEST(CacheGating, AccessSizeGatesStatically)
{
    CacheGatingModel m;
    // A byte access never toggles more than 8 bits, even for a "wide"
    // looking value pattern (the value is only 8 bits here anyway).
    m.recordAccess(0xff, 1);
    EXPECT_EQ(m.stats().gatedBySize, 1u);
    // 0xff is narrow16, but width is already 8 < 16: size wins.
    EXPECT_EQ(m.stats().gated16, 0u);
    EXPECT_DOUBLE_EQ(m.stats().gatedMwSum, 60.0 + 40.0 * 8 / 64);
    // No dynamic gating below the size: no mux charge.
    EXPECT_DOUBLE_EQ(m.stats().overheadMwSum, 0.0);
}

TEST(CacheGating, WideQuadPaysFullPower)
{
    CacheGatingModel m;
    m.recordAccess(u64{1} << 50, 8);
    EXPECT_DOUBLE_EQ(m.stats().gatedMwSum, 100.0);
    EXPECT_DOUBLE_EQ(m.stats().overheadMwSum, 0.0);
    EXPECT_DOUBLE_EQ(m.stats().reductionPercent(), 0.0);
}

TEST(CacheGating, DisabledChargesBaseline)
{
    CacheGatingConfig cfg;
    cfg.enabled = false;
    CacheGatingModel m(cfg);
    m.recordAccess(1, 8);
    EXPECT_DOUBLE_EQ(m.stats().optimizedMwSum(),
                     m.stats().baselineMwSum);
}

TEST(CacheGating, Gate33Disable)
{
    CacheGatingConfig cfg;
    cfg.gate33 = false;
    CacheGatingModel m(cfg);
    m.recordAccess((u64{1} << 32) + 5, 8);
    EXPECT_EQ(m.stats().gated33, 0u);
    EXPECT_DOUBLE_EQ(m.stats().gatedMwSum, 100.0);
}

TEST(CacheGating, CoreIntegrationCountsLoadsAndStores)
{
    const Program prog = test::buildProgram([](Assembler &as) {
        as.la(16, "arr");
        as.li(1, 300);
        as.label("loop");
        as.andi(2, 1, 31);
        as.slli(3, 2, 3);
        as.add(3, 3, 16);
        as.ldq(4, 0, 3);            // narrow loaded values
        as.addi(4, 4, 1);
        as.stq(4, 0, 3);            // narrow stored values
        as.subi(1, 1, 1);
        as.bne(1, "loop");
        as.halt();
        as.dataLabel("arr");
        for (int i = 0; i < 32; ++i)
            as.dataQuad(static_cast<u64>(i));
    });
    auto run = test::runDifferential(prog, presets::baseline());
    const CacheGatingStats &s = run.core->cacheGating().stats();
    // ~300 loads + ~300 stores (plus wrong-path loads).
    EXPECT_GT(s.accesses, 550u);
    EXPECT_GT(s.gated16, 500u);
    EXPECT_GT(s.reductionPercent(), 20.0);
    EXPECT_LT(s.reductionPercent(), 60.0);
}

TEST(CacheGating, ResetClears)
{
    CacheGatingModel m;
    m.recordAccess(1, 8);
    m.reset();
    EXPECT_EQ(m.stats().accesses, 0u);
    EXPECT_DOUBLE_EQ(m.stats().baselineMwSum, 0.0);
}

} // namespace
} // namespace nwsim
