/**
 * Textual-assembler error handling and disassembler round-trips: every
 * diagnostic carries a line number, and disassembly re-assembles to the
 * identical encoding.
 */

#include <gtest/gtest.h>

#include "asm/textasm.hh"
#include "common/error.hh"
#include "common/rng.hh"
#include "isa/disasm.hh"
#include "isa/encode.hh"
#include "mem/sparse_memory.hh"

namespace nwsim
{
namespace
{

/**
 * Malformed assembly must throw BadInputError (the bad-input class of
 * the SimError taxonomy) with the diagnostic in the message — not kill
 * the process, so campaign jobs survive bad generated programs.
 */
void
expectSyntaxError(const char *src, const char *message)
{
    try {
        assembleText(src);
        FAIL() << "expected BadInputError mentioning \"" << message
               << "\"";
    } catch (const BadInputError &e) {
        EXPECT_NE(std::string(e.what()).find(message), std::string::npos)
            << "diagnostic \"" << e.what() << "\" lacks \"" << message
            << "\"";
    }
}

TEST(TextAsmErrors, UnknownMnemonic)
{
    expectSyntaxError("frobnicate r1, r2\nhalt\n", "unknown mnemonic");
}

TEST(TextAsmErrors, UnknownDirective)
{
    expectSyntaxError(".data\n.wibble 4\n", "unknown directive");
}

TEST(TextAsmErrors, BadRegister)
{
    expectSyntaxError("add r1, r2, r99\nhalt\n", "register out of range");
    expectSyntaxError("add r1, r2, rx\nhalt\n", "bad register");
    expectSyntaxError("add r1, 5, r2\nhalt\n", "expected register");
}

TEST(TextAsmErrors, BadInteger)
{
    expectSyntaxError("addi r1, r2, zonk\nhalt\n", "bad integer");
}

TEST(TextAsmErrors, BadOperandCount)
{
    expectSyntaxError("add r1, r2\nhalt\n", "expects 3 operands");
    expectSyntaxError("halt r1\n", "expects 0 operands");
}

TEST(TextAsmErrors, BadMemorySyntax)
{
    expectSyntaxError("ldq r1, r2\nhalt\n", "expected offset");
}

TEST(TextAsmErrors, InstructionInDataSection)
{
    expectSyntaxError(".data\nadd r1, r2, r3\n", "instruction in .data");
}

TEST(TextAsmErrors, LineNumberReported)
{
    expectSyntaxError("nop\nnop\nbogus\n", "line 3");
}

TEST(TextAsmErrors, UndefinedLabel)
{
    expectSyntaxError("br nowhere\nhalt\n", "undefined label");
}

/**
 * Property: disassembling any valid instruction and re-assembling the
 * text produces the identical machine word (for non-control formats
 * whose text form is position-independent).
 */
class DisasmRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(DisasmRoundTrip, TextFormSurvives)
{
    SplitMix64 rng(GetParam() * 977 + 5);
    int checked = 0;
    for (int trial = 0; trial < 400; ++trial) {
        const auto op = static_cast<Opcode>(
            rng.below(static_cast<u64>(Opcode::NumOpcodes)));
        const OpInfo &info = opInfo(op);
        if (info.format == Format::B)
            continue;   // branch text uses labels, tested elsewhere
        Inst inst;
        inst.op = op;
        switch (info.format) {
          case Format::R:
            inst.ra = static_cast<RegIndex>(rng.below(32));
            inst.rb = (op == Opcode::SEXTB || op == Opcode::SEXTW)
                          ? zeroReg
                          : static_cast<RegIndex>(rng.below(32));
            inst.rc = static_cast<RegIndex>(rng.below(32));
            break;
          case Format::I:
            inst.ra = static_cast<RegIndex>(rng.below(32));
            if (isStore(op))
                inst.rb = static_cast<RegIndex>(rng.below(32));
            else
                inst.rc = static_cast<RegIndex>(rng.below(32));
            inst.imm = immZeroExtends(op)
                           ? static_cast<i64>(rng.below(65536))
                           : rng.range(-32768, 32767);
            break;
          case Format::J:
            inst.rb = static_cast<RegIndex>(rng.below(32));
            if (op != Opcode::RET)
                inst.rc = static_cast<RegIndex>(rng.below(32));
            break;
          default:
            break;
        }
        const MachineWord want = encode(inst);
        const std::string text = disassemble(inst) + "\nhalt\n";
        const Program prog = assembleText(text);
        SparseMemory mem;
        prog.load(mem);
        const auto got = static_cast<MachineWord>(mem.read(prog.entry, 4));
        EXPECT_EQ(got, want) << disassemble(inst);
        ++checked;
    }
    EXPECT_GT(checked, 200);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisasmRoundTrip, ::testing::Range(0, 4));

} // namespace
} // namespace nwsim
