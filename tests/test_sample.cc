/**
 * Sampled-simulation subsystem (src/sample/, docs/SAMPLING.md): the
 * aggregator's statistics against hand-computed fixtures, stratified-
 * merge associativity, the `+sample=` spec grammar, controller
 * behavior (small budgets, randomized schedules, warmup sensitivity),
 * wire round-trips of the sample fields, and determinism of sampled
 * campaigns across worker counts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.hh"
#include "exp/campaign.hh"
#include "exp/configs.hh"
#include "exp/wire.hh"
#include "sample/aggregate.hh"
#include "sample/controller.hh"
#include "workloads/kernels.hh"

namespace nwsim
{
namespace
{

using sample::MetricEstimate;
using sample::SampleAggregator;
using sample::SampleMetric;
using sample::studentT975;

/** Interval fixture with every headline ratio under direct control. */
RunResult
fakeInterval(u64 committed, u64 cycles, u64 packed, u64 gating_ops,
             u64 gated16, double l1d_miss = 0.0)
{
    RunResult r;
    r.workload = "fixture";
    r.configName = "cfg";
    r.measuredCommitted = committed;
    r.core.committed = committed;
    r.core.cycles = cycles;
    r.packing.packedInsts = packed;
    r.gating.ops = gating_ops;
    r.gating.gated16 = gated16;
    r.gating.baselineMwSum = 100.0;
    r.gating.gatedMwSum = 60.0;
    r.l1dMissRate = l1d_miss;
    return r;
}

// ---- Student-t quantiles ------------------------------------------------

TEST(SampleStats, StudentTQuantilesMatchTheTable)
{
    EXPECT_DOUBLE_EQ(studentT975(0), 0.0);
    EXPECT_DOUBLE_EQ(studentT975(1), 12.706);  // two intervals
    EXPECT_DOUBLE_EQ(studentT975(10), 2.228);
    EXPECT_DOUBLE_EQ(studentT975(30), 2.042);
    // Interpolated region: dof 50 sits halfway between the 40 and 60
    // rows (2.021 and 2.000).
    EXPECT_NEAR(studentT975(50), 2.0105, 1e-9);
    // Asymptote.
    EXPECT_DOUBLE_EQ(studentT975(100000), 1.96);
}

// ---- hand-computed error bars -------------------------------------------

TEST(SampleStats, IpcErrorBarMatchesHandComputation)
{
    // IPC samples 1.0, 2.0, 3.0: mean 2, sample stddev 1 (n-1 = 2),
    // CoV 0.5, CI half-width t(2) * 1 / sqrt(3) = 4.303 / 1.732...
    SampleAggregator agg;
    agg.addInterval(fakeInterval(1000, 1000, 0, 0, 0));
    agg.addInterval(fakeInterval(2000, 1000, 0, 0, 0));
    agg.addInterval(fakeInterval(3000, 1000, 0, 0, 0));

    const MetricEstimate est = agg.estimate(SampleMetric::Ipc);
    EXPECT_EQ(est.n, 3u);
    EXPECT_DOUBLE_EQ(est.mean, 2.0);
    EXPECT_DOUBLE_EQ(est.stddev, 1.0);
    EXPECT_DOUBLE_EQ(est.cov(), 0.5);
    EXPECT_NEAR(est.ciHalfWidth95(), 4.303 / std::sqrt(3.0), 1e-12);
    EXPECT_TRUE(est.contains(2.0));
    EXPECT_FALSE(est.contains(5.0));
}

TEST(SampleStats, PackedAndGatingRatesArePerIntervalRatios)
{
    // Packed rates 0.5 and 0.25; gating rates 0.1 and 0.3.
    SampleAggregator agg;
    agg.addInterval(fakeInterval(1000, 1000, 500, 1000, 100));
    agg.addInterval(fakeInterval(2000, 1000, 500, 1000, 300));

    const MetricEstimate packed =
        agg.estimate(SampleMetric::PackedRate);
    EXPECT_DOUBLE_EQ(packed.mean, (0.5 + 0.25) / 2.0);
    const MetricEstimate gating =
        agg.estimate(SampleMetric::GatingRate);
    EXPECT_DOUBLE_EQ(gating.mean, (0.1 + 0.3) / 2.0);
    // Power reduction is 40% in both fixtures: zero spread.
    const MetricEstimate power =
        agg.estimate(SampleMetric::PowerReduction);
    EXPECT_DOUBLE_EQ(power.mean, 40.0);
    EXPECT_DOUBLE_EQ(power.stddev, 0.0);
}

TEST(SampleStats, SingleIntervalHasNoErrorBar)
{
    SampleAggregator agg;
    agg.addInterval(fakeInterval(1500, 1000, 0, 0, 0));
    const MetricEstimate est = agg.estimate(SampleMetric::Ipc);
    EXPECT_EQ(est.n, 1u);
    EXPECT_DOUBLE_EQ(est.mean, 1.5);
    EXPECT_DOUBLE_EQ(est.stddev, 0.0);
    EXPECT_DOUBLE_EQ(est.ciHalfWidth95(), 0.0);
}

// ---- stratified merge ---------------------------------------------------

TEST(SampleStats, MergeMatchesSequentialAggregationInAnyGrouping)
{
    const RunResult intervals[] = {
        fakeInterval(1000, 900, 100, 800, 80, 0.02),
        fakeInterval(1200, 1000, 300, 900, 90, 0.01),
        fakeInterval(800, 1100, 200, 700, 200, 0.05),
        fakeInterval(1500, 1000, 600, 1000, 10, 0.03),
        fakeInterval(900, 950, 50, 850, 400, 0.00),
    };

    SampleAggregator sequential;
    for (const RunResult &r : intervals)
        sequential.addInterval(r);

    // Split 2 / 2 / 1 across three aggregators, merge right-to-left.
    SampleAggregator a, b, c;
    a.addInterval(intervals[0]);
    a.addInterval(intervals[1]);
    b.addInterval(intervals[2]);
    b.addInterval(intervals[3]);
    c.addInterval(intervals[4]);
    b.merge(c);
    a.merge(b);

    EXPECT_EQ(a.intervals(), sequential.intervals());
    for (size_t m = 0;
         m < static_cast<size_t>(SampleMetric::NumMetrics); ++m) {
        const auto metric = static_cast<SampleMetric>(m);
        const MetricEstimate lhs = a.estimate(metric);
        const MetricEstimate rhs = sequential.estimate(metric);
        EXPECT_DOUBLE_EQ(lhs.mean, rhs.mean) << sampleMetricName(metric);
        EXPECT_DOUBLE_EQ(lhs.stddev, rhs.stddev)
            << sampleMetricName(metric);
    }

    const RunResult lhs = a.aggregate();
    const RunResult rhs = sequential.aggregate();
    EXPECT_EQ(lhs.core.committed, rhs.core.committed);
    EXPECT_EQ(lhs.core.cycles, rhs.core.cycles);
    EXPECT_EQ(lhs.packing.packedInsts, rhs.packing.packedInsts);
    EXPECT_DOUBLE_EQ(lhs.l1dMissRate, rhs.l1dMissRate);
}

TEST(SampleStats, AggregateIsRatioOfSums)
{
    // Two intervals with very different cycle counts: the aggregate IPC
    // must be (sum committed) / (sum cycles), not the mean of ratios.
    SampleAggregator agg;
    agg.addInterval(fakeInterval(1000, 500, 0, 0, 0, 0.10));
    agg.addInterval(fakeInterval(1000, 2000, 0, 0, 0, 0.40));

    const RunResult total = agg.aggregate();
    EXPECT_DOUBLE_EQ(total.ipc(), 2000.0 / 2500.0);
    // Miss rates are commit-weighted (equal commits here: plain mean).
    EXPECT_DOUBLE_EQ(total.l1dMissRate, 0.25);
}

// ---- spec grammar -------------------------------------------------------

TEST(SampleSpec, ModifierParsesAllFields)
{
    const SampleOptions off = exp::sampleBySpec("baseline");
    EXPECT_FALSE(off.enabled);

    const SampleOptions s =
        exp::sampleBySpec("packing+sample=50000:2000:8000");
    EXPECT_TRUE(s.enabled);
    EXPECT_EQ(s.periodInsts, 50000u);
    EXPECT_EQ(s.warmupInsts, 2000u);
    EXPECT_EQ(s.measureInsts, 8000u);
    EXPECT_FALSE(s.randomize);

    const SampleOptions r =
        exp::sampleBySpec("baseline+sample=50000:2000:8000:rand:77");
    EXPECT_TRUE(r.randomize);
    EXPECT_EQ(r.seed, 77u);
}

TEST(SampleSpec, MalformedModifiersAreRejected)
{
    EXPECT_THROW(exp::sampleBySpec("baseline+sample=abc"),
                 BadInputError);
    EXPECT_THROW(exp::sampleBySpec("baseline+sample=1000:10"),
                 BadInputError);
    EXPECT_THROW(exp::sampleBySpec("baseline+sample=1000:10:20:wat"),
                 BadInputError);
    // Schedule nonsense dies in validation: measure 0, period smaller
    // than the detailed portion.
    SampleOptions zero_measure;
    zero_measure.enabled = true;
    zero_measure.periodInsts = 1000;
    zero_measure.measureInsts = 0;
    EXPECT_THROW(sample::validateSampleOptions(zero_measure),
                 BadInputError);
    SampleOptions tight;
    tight.enabled = true;
    tight.periodInsts = 100;
    tight.warmupInsts = 80;
    tight.measureInsts = 40;
    EXPECT_THROW(sample::validateSampleOptions(tight), BadInputError);
}

// ---- controller ---------------------------------------------------------

RunOptions
sampledOpts(u64 budget, u64 period, u64 warmup, u64 measure)
{
    RunOptions opts;
    opts.warmupInsts = 0;
    opts.measureInsts = budget;
    opts.sample.enabled = true;
    opts.sample.periodInsts = period;
    opts.sample.warmupInsts = warmup;
    opts.sample.measureInsts = measure;
    return opts;
}

TEST(SampleController, BudgetSmallerThanOnePeriodStillMeasures)
{
    const Program prog = workloadByName("perl").program();
    const RunOptions opts = sampledOpts(20000, 1000000, 1000, 4000);
    const RunResult r = sample::runSampledProgram(
        prog, exp::configBySpec("baseline"), opts, "perl", "baseline");
    EXPECT_TRUE(r.sample.sampled);
    EXPECT_EQ(r.sample.intervals, 1u);
    EXPECT_GT(r.ipc(), 0.0);
}

TEST(SampleController, RepeatedRunsAreDeterministic)
{
    const Program prog = workloadByName("li").program();
    RunOptions opts = sampledOpts(120000, 30000, 1000, 4000);
    opts.sample.randomize = true;
    opts.sample.seed = 7;
    const RunResult a = sample::runSampledProgram(
        prog, exp::configBySpec("packing"), opts, "li", "packing");
    const RunResult b = sample::runSampledProgram(
        prog, exp::configBySpec("packing"), opts, "li", "packing");
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.core.committed, b.core.committed);
    EXPECT_EQ(a.sample.intervals, b.sample.intervals);
    EXPECT_DOUBLE_EQ(a.sample.metrics[0].mean, b.sample.metrics[0].mean);
    EXPECT_DOUBLE_EQ(a.sample.metrics[0].ci95, b.sample.metrics[0].ci95);
}

TEST(SampleController, ZeroDetailedWarmupDiverges)
{
    // Warmup-sensitivity regression: per-interval detailed warmup is
    // what primes caches and predictors after each functional
    // fast-forward. Dropping it must visibly change the measurement —
    // if this test ever starts failing because the two runs agree, the
    // warmup phase has stopped doing its job.
    const Program prog = workloadByName("go").program();
    const CoreConfig cfg = exp::configBySpec("baseline");
    const RunResult warmed = sample::runSampledProgram(
        prog, cfg, sampledOpts(150000, 30000, 2000, 4000), "go",
        "baseline");
    const RunResult cold = sample::runSampledProgram(
        prog, cfg, sampledOpts(150000, 30000, 0, 4000), "go",
        "baseline");
    EXPECT_EQ(warmed.sample.intervals, cold.sample.intervals);
    const double warmed_ipc = warmed.sample.metrics[0].mean;
    const double cold_ipc = cold.sample.metrics[0].mean;
    EXPECT_GT(std::fabs(warmed_ipc - cold_ipc), 1e-3)
        << "zero-warmup sampled run agreed with the warmed run";
}

// ---- wire round-trip ----------------------------------------------------

TEST(SampleWire, RunResultRoundTripsSampleSummary)
{
    exp::JobOutcome out;
    out.workload = "perl";
    out.configSpec = "baseline+sample=50000:2000:8000";
    out.ok = true;
    out.status = exp::JobStatus::Ok;
    out.attempts = 1;
    out.result.workload = "perl";
    out.result.sample.sampled = true;
    out.result.sample.intervals = 9;
    out.result.sample.streamInsts = 410000;
    out.result.sample.metrics[0] = {1.426, 0.018, 0.020};
    out.result.sample.metrics[3] = {12.5, 0.5, 1.25};

    exp::JobOutcome back;
    ASSERT_TRUE(exp::unpackJobOutcome(exp::packJobOutcome(out), back));
    EXPECT_TRUE(back.result.sample.sampled);
    EXPECT_EQ(back.result.sample.intervals, 9u);
    EXPECT_EQ(back.result.sample.streamInsts, 410000u);
    EXPECT_DOUBLE_EQ(back.result.sample.metrics[0].mean, 1.426);
    EXPECT_DOUBLE_EQ(back.result.sample.metrics[0].cov, 0.018);
    EXPECT_DOUBLE_EQ(back.result.sample.metrics[0].ci95, 0.020);
    EXPECT_DOUBLE_EQ(back.result.sample.metrics[3].ci95, 1.25);
}

TEST(SampleWire, JobSpecRoundTripsSampleOptions)
{
    exp::SimJob job;
    job.workload = "li";
    job.configSpec = "packing+sample=50000:2000:8000:rand:42";
    job.config = exp::configBySpec("packing");
    job.opts.sample = exp::sampleBySpec(job.configSpec);

    exp::SimJob back;
    ASSERT_EQ(exp::unpackSimJobSpec(exp::packSimJobSpec(job), back),
              exp::WireError::None);
    EXPECT_TRUE(back.opts.sample.enabled);
    EXPECT_EQ(back.opts.sample.periodInsts, 50000u);
    EXPECT_EQ(back.opts.sample.warmupInsts, 2000u);
    EXPECT_EQ(back.opts.sample.measureInsts, 8000u);
    EXPECT_TRUE(back.opts.sample.randomize);
    EXPECT_EQ(back.opts.sample.seed, 42u);
}

// ---- campaign determinism -----------------------------------------------

std::string
sampledGridJson(unsigned jobs, exp::ExecutorKind executor)
{
    RunOptions opts;
    opts.warmupInsts = 0;
    opts.measureInsts = 60000;
    exp::Campaign c = exp::Campaign::grid(
        {"perl", "li"}, {"baseline+sample=20000:1000:4000"}, opts);
    exp::CampaignOptions copts;
    copts.jobs = jobs;
    copts.executor = executor;
    const exp::ResultSet rs = c.run(copts);
    EXPECT_TRUE(rs.allOk());
    std::ostringstream os;
    rs.writeJson(os, /*include_timing=*/false);
    return os.str();
}

TEST(SampleCampaign, JsonIsIdenticalAcrossWorkerCountsAndExecutors)
{
    const std::string serial =
        sampledGridJson(1, exp::ExecutorKind::Thread);
    EXPECT_EQ(serial, sampledGridJson(4, exp::ExecutorKind::Thread));
    EXPECT_EQ(serial, sampledGridJson(2, exp::ExecutorKind::Fork));
}

TEST(SampleCampaign, TableAndCsvCarryErrorBars)
{
    RunOptions opts;
    opts.warmupInsts = 0;
    opts.measureInsts = 60000;
    exp::Campaign c = exp::Campaign::grid(
        {"perl"}, {"baseline+sample=20000:1000:4000"}, opts);
    const exp::ResultSet rs = c.run({});
    ASSERT_TRUE(rs.allOk());

    const std::string table = rs.toTable().render();
    EXPECT_NE(table.find("±"), std::string::npos);

    std::ostringstream csv;
    rs.writeCsv(csv);
    EXPECT_NE(csv.str().find("sample_intervals"), std::string::npos);
    EXPECT_NE(csv.str().find("ipc_ci95"), std::string::npos);

    std::ostringstream json;
    rs.writeJson(json, /*include_timing=*/false);
    EXPECT_NE(json.str().find("\"sample\""), std::string::npos);
    EXPECT_NE(json.str().find("\"intervals\""), std::string::npos);
}

} // namespace
} // namespace nwsim
