/** Unit tests for common/bitops.hh. */

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "common/rng.hh"

namespace nwsim
{
namespace
{

TEST(Sext, Basic)
{
    EXPECT_EQ(sext(0x80, 8), 0xffffffffffffff80ULL);
    EXPECT_EQ(sext(0x7f, 8), 0x7fULL);
    EXPECT_EQ(sext(0xffff, 16), ~u64{0});
    EXPECT_EQ(sext(0x8000, 16), 0xffffffffffff8000ULL);
    EXPECT_EQ(sext(0x1234, 16), 0x1234ULL);
    EXPECT_EQ(sext(0xdeadbeefcafef00d, 64), 0xdeadbeefcafef00dULL);
}

TEST(Zext, Basic)
{
    EXPECT_EQ(zext(0xffffffffffffff80ULL, 8), 0x80ULL);
    EXPECT_EQ(zext(0x12345678, 16), 0x5678ULL);
    EXPECT_EQ(zext(~u64{0}, 64), ~u64{0});
    EXPECT_EQ(zext(12345, 0), 0ULL);
}

TEST(Clz, Boundaries)
{
    EXPECT_EQ(clz64(0), 64u);
    EXPECT_EQ(clz64(1), 63u);
    EXPECT_EQ(clz64(~u64{0}), 0u);
    EXPECT_EQ(clo64(~u64{0}), 64u);
    EXPECT_EQ(clo64(0), 0u);
    EXPECT_EQ(clo64(u64{1} << 63), 1u);
}

TEST(SignedWidth, PaperExamples)
{
    // "adding 17, a 5-bit number, to 2, a 2-bit number" — with the
    // two's-complement sign bit these need one extra bit.
    EXPECT_EQ(signedWidth(17), 6u);
    EXPECT_EQ(signedWidth(2), 3u);
    EXPECT_EQ(signedWidth(0), 1u);
    EXPECT_EQ(signedWidth(~u64{0}), 1u);    // -1
    EXPECT_EQ(signedWidth(static_cast<u64>(-2)), 2u);
    EXPECT_EQ(signedWidth(u64{1} << 63), 64u);
    EXPECT_EQ(signedWidth(0x7fffffffffffffffULL), 64u);
}

TEST(FitsSigned, Boundaries)
{
    EXPECT_TRUE(fitsSigned(32767, 16));
    EXPECT_FALSE(fitsSigned(32768, 16));
    EXPECT_TRUE(fitsSigned(static_cast<u64>(-32768), 16));
    EXPECT_FALSE(fitsSigned(static_cast<u64>(-32769), 16));
    EXPECT_TRUE(fitsSigned(~u64{0}, 1));
    EXPECT_FALSE(fitsSigned(1, 1));
}

TEST(FitsUnsigned, Boundaries)
{
    EXPECT_TRUE(fitsUnsigned(65535, 16));
    EXPECT_FALSE(fitsUnsigned(65536, 16));
    EXPECT_FALSE(fitsUnsigned(~u64{0}, 16));
}

TEST(Bits, ExtractInsert)
{
    EXPECT_EQ(bits(0xdeadbeef, 15, 0), 0xbeefULL);
    EXPECT_EQ(bits(0xdeadbeef, 31, 16), 0xdeadULL);
    EXPECT_EQ(bits(~u64{0}, 63, 0), ~u64{0});
    EXPECT_EQ(insertBits(0xbeef, 15, 0), 0xbeefULL);
    EXPECT_EQ(insertBits(0xff, 11, 4), 0xff0ULL);
    EXPECT_EQ(insertBits(0x1ff, 11, 4), 0xff0ULL);  // truncates to field
}

/** Property: sext/zext agree with arithmetic on random values. */
class BitopsProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(BitopsProperty, SextZextRoundTrip)
{
    SplitMix64 rng(GetParam() * 7919 + 3);
    for (int i = 0; i < 2000; ++i) {
        const u64 v = rng.next();
        const unsigned bits_n = 1 + static_cast<unsigned>(rng.below(63));
        const u64 s = sext(v, bits_n);
        const u64 z = zext(v, bits_n);
        // Low bits preserved.
        EXPECT_EQ(zext(s, bits_n), z);
        // Sign extension fills with copies of the top bit.
        EXPECT_TRUE(fitsSigned(s, bits_n));
        EXPECT_TRUE(fitsUnsigned(z, bits_n));
        // signedWidth is the least w with fitsSigned.
        const unsigned w = signedWidth(v);
        EXPECT_TRUE(fitsSigned(v, w));
        if (w > 1) {
            EXPECT_FALSE(fitsSigned(v, w - 1));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitopsProperty, ::testing::Range(0, 8));

} // namespace
} // namespace nwsim
