/** Unit tests for the ISA: opcode metadata, encode/decode, disasm. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "isa/disasm.hh"
#include "isa/encode.hh"

namespace nwsim
{
namespace
{

TEST(OpInfo, TableConsistency)
{
    for (int i = 0; i < static_cast<int>(Opcode::NumOpcodes); ++i) {
        const auto op = static_cast<Opcode>(i);
        const OpInfo &info = opInfo(op);
        EXPECT_FALSE(info.mnemonic.empty());
        EXPECT_GE(info.latency, 1);
        // Replay packing only applies to packable add/sub shapes.
        if (info.replayPackable) {
            EXPECT_TRUE(info.packKey == PackKey::Add ||
                        info.packKey == PackKey::Sub);
        }
        // Packable ops are the ALU arithmetic/logic/shift set.
        if (info.packKey != PackKey::None) {
            EXPECT_TRUE(info.opClass == OpClass::IntAlu ||
                        info.opClass == OpClass::Logic ||
                        info.opClass == OpClass::Shift)
                << info.mnemonic;
        }
        // Memory/branch ops use the adder for address generation.
        if (info.opClass == OpClass::MemRead ||
            info.opClass == OpClass::MemWrite ||
            info.opClass == OpClass::Branch) {
            EXPECT_EQ(info.device, DeviceClass::Adder) << info.mnemonic;
        }
    }
}

TEST(OpInfo, Classifiers)
{
    EXPECT_TRUE(isLoad(Opcode::LDQ));
    EXPECT_TRUE(isLoad(Opcode::LDBU));
    EXPECT_FALSE(isLoad(Opcode::STQ));
    EXPECT_TRUE(isStore(Opcode::STB));
    EXPECT_TRUE(isCondBranch(Opcode::BEQ));
    EXPECT_TRUE(isCondBranch(Opcode::BGE));
    EXPECT_FALSE(isCondBranch(Opcode::BR));
    EXPECT_TRUE(isControl(Opcode::BR));
    EXPECT_TRUE(isControl(Opcode::RET));
    EXPECT_FALSE(isControl(Opcode::ADD));
    EXPECT_EQ(memAccessSize(Opcode::LDQ), 8u);
    EXPECT_EQ(memAccessSize(Opcode::STW), 2u);
    EXPECT_TRUE(immZeroExtends(Opcode::ORI));
    EXPECT_FALSE(immZeroExtends(Opcode::ADDI));
}

/** Round-trip every opcode through encode/decode with varied fields. */
class EncodeRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(EncodeRoundTrip, AllFieldPatterns)
{
    const auto op = static_cast<Opcode>(GetParam());
    const OpInfo &info = opInfo(op);
    SplitMix64 rng(GetParam() + 17);
    for (int trial = 0; trial < 64; ++trial) {
        Inst inst;
        inst.op = op;
        switch (info.format) {
          case Format::R:
            inst.ra = static_cast<RegIndex>(rng.below(32));
            inst.rb = static_cast<RegIndex>(rng.below(32));
            inst.rc = static_cast<RegIndex>(rng.below(32));
            if (op == Opcode::SEXTB || op == Opcode::SEXTW)
                inst.rb = zeroReg;
            break;
          case Format::I:
            inst.ra = static_cast<RegIndex>(rng.below(32));
            if (isStore(op))
                inst.rb = static_cast<RegIndex>(rng.below(32));
            else
                inst.rc = static_cast<RegIndex>(rng.below(32));
            inst.imm = immZeroExtends(op)
                           ? static_cast<i64>(rng.below(65536))
                           : rng.range(-32768, 32767);
            break;
          case Format::B:
            if (op == Opcode::BR)
                inst.rc = static_cast<RegIndex>(rng.below(32));
            else
                inst.ra = static_cast<RegIndex>(rng.below(32));
            inst.disp = rng.range(-(1 << 20), (1 << 20) - 1);
            break;
          case Format::J:
            inst.rb = static_cast<RegIndex>(rng.below(32));
            if (op != Opcode::RET)
                inst.rc = static_cast<RegIndex>(rng.below(32));
            break;
          case Format::None:
            break;
        }

        bool valid = false;
        const Inst back = decode(encode(inst), &valid);
        EXPECT_TRUE(valid);
        EXPECT_EQ(back.op, inst.op);
        EXPECT_EQ(back.imm, inst.imm) << disassemble(inst);
        EXPECT_EQ(back.disp, inst.disp) << disassemble(inst);
        // Dataflow roles must survive; rc == zeroReg writes are dropped.
        EXPECT_EQ(back.ra, inst.ra) << disassemble(inst);
        EXPECT_EQ(back.rb, inst.rb) << disassemble(inst);
        EXPECT_EQ(back.rc, inst.rc) << disassemble(inst);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, EncodeRoundTrip,
    ::testing::Range(0, static_cast<int>(Opcode::NumOpcodes)));

TEST(Decode, InvalidOpcodeIsNop)
{
    bool valid = true;
    const Inst inst = decode(0xffffffff, &valid);
    EXPECT_FALSE(valid);
    EXPECT_EQ(inst.op, Opcode::NOP);
}

TEST(Disasm, Formats)
{
    Inst add;
    add.op = Opcode::ADD;
    add.ra = 1;
    add.rb = 2;
    add.rc = 3;
    EXPECT_EQ(disassemble(add), "add r3, r1, r2");

    Inst ld;
    ld.op = Opcode::LDQ;
    ld.ra = 4;
    ld.rc = 5;
    ld.imm = -8;
    EXPECT_EQ(disassemble(ld), "ldq r5, -8(r4)");

    Inst st;
    st.op = Opcode::STW;
    st.ra = 4;
    st.rb = 6;
    st.imm = 16;
    EXPECT_EQ(disassemble(st), "stw r6, 16(r4)");

    Inst beq;
    beq.op = Opcode::BEQ;
    beq.ra = 7;
    beq.disp = 3;
    EXPECT_EQ(disassemble(beq, 0x1000), "beq r7, 0x1010");
}

TEST(Inst, BranchTarget)
{
    Inst b;
    b.op = Opcode::BR;
    b.disp = -2;
    EXPECT_EQ(b.branchTarget(0x1008), 0x1004u);
    b.disp = 0;
    EXPECT_EQ(b.branchTarget(0x1008), 0x100cu);
}

TEST(Inst, CallReturnClassifiers)
{
    Inst bsr;
    bsr.op = Opcode::BR;
    bsr.rc = raReg;
    EXPECT_TRUE(isCall(bsr));
    bsr.rc = zeroReg;
    EXPECT_FALSE(isCall(bsr));

    Inst jsr;
    jsr.op = Opcode::JSR;
    EXPECT_TRUE(isCall(jsr));

    Inst ret;
    ret.op = Opcode::RET;
    EXPECT_TRUE(isReturn(ret));
    EXPECT_TRUE(isIndirectControl(ret));
}

} // namespace
} // namespace nwsim
