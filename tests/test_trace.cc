/** Tests for the pipeline trace facility. */

#include <map>

#include "sim_test_util.hh"

#include "driver/presets.hh"

namespace nwsim
{
namespace
{

using test::buildProgram;

Program
tracedProgram()
{
    return buildProgram([](Assembler &as) {
        as.li(1, 0x9d1);            // lfsr for some mispredicts
        as.li(2, 200);
        as.li(3, 0);
        as.label("loop");
        as.andi(4, 1, 1);
        as.srli(1, 1, 1);
        as.beq(4, "skip");
        as.xori(1, 1, 0x6a0);
        as.addi(3, 3, 1);
        as.label("skip");
        as.addi(5, 3, 2);
        as.addi(6, 3, 4);
        as.subi(2, 2, 1);
        as.bne(2, "loop");
        as.halt();
    });
}

TEST(Trace, EventOrderingInvariants)
{
    const Program prog = tracedProgram();
    SparseMemory mem;
    prog.load(mem);
    OutOfOrderCore core(presets::packing(true), mem, prog.entry);

    struct PerSeq
    {
        std::vector<TraceStage> stages;
        Cycle lastCycle = 0;
    };
    std::map<InstSeq, PerSeq> log;
    u64 commits = 0;
    Cycle last_commit_cycle = 0;
    InstSeq last_commit_seq = 0;
    u64 events = 0;
    core.setTraceHook([&](const TraceEvent &ev) {
        ++events;
        PerSeq &p = log[ev.seq];
        EXPECT_GE(ev.cycle, p.lastCycle) << "time went backwards";
        p.lastCycle = ev.cycle;
        p.stages.push_back(ev.stage);
        if (ev.stage == TraceStage::Commit) {
            ++commits;
            // Commits are in order (seqs rewind on squash, so compare
            // cycle monotonicity and program order via cycle,seq pair).
            EXPECT_GE(ev.cycle, last_commit_cycle);
            if (ev.cycle == last_commit_cycle) {
                EXPECT_GT(ev.seq, last_commit_seq);
            }
            last_commit_cycle = ev.cycle;
            last_commit_seq = ev.seq;
        }
    });

    core.run(1'000'000);
    EXPECT_TRUE(core.done());
    EXPECT_EQ(commits, core.stats().committed);
    EXPECT_GT(events, commits * 3);     // dispatch+issue+complete+commit

    for (const auto &[seq, p] : log) {
        // Sequence numbers are reused after squashes, so each seq holds
        // one or more lifetimes; every lifetime must match
        //   dispatch (issue (complete | replay))* (squash | commit)
        // and only a squash may be followed by a new lifetime.
        bool in_lifetime = false;
        bool issued = false;
        TraceStage last_terminal = TraceStage::Squash;
        for (size_t i = 0; i < p.stages.size(); ++i) {
            const TraceStage s = p.stages[i];
            switch (s) {
              case TraceStage::Dispatch:
                EXPECT_FALSE(in_lifetime)
                    << "re-dispatch without terminal, seq " << seq;
                in_lifetime = true;
                issued = false;
                break;
              case TraceStage::Issue:
                EXPECT_TRUE(in_lifetime);
                EXPECT_FALSE(issued);
                issued = true;
                break;
              case TraceStage::Complete:
              case TraceStage::Replay:
                EXPECT_TRUE(in_lifetime);
                EXPECT_TRUE(issued);
                issued = false;
                break;
              case TraceStage::Commit:
                EXPECT_TRUE(in_lifetime);
                EXPECT_FALSE(issued) << "commit while executing";
                in_lifetime = false;
                last_terminal = TraceStage::Commit;
                break;
              case TraceStage::Squash:
                EXPECT_TRUE(in_lifetime);
                in_lifetime = false;
                last_terminal = TraceStage::Squash;
                break;
              case TraceStage::Redirect:
                break;
            }
        }
        // A seq's final lifetime either committed or was squashed and
        // never refilled (end of run).
        EXPECT_FALSE(in_lifetime) << "dangling lifetime, seq " << seq;
        (void)last_terminal;
    }
}

TEST(Trace, CommittedStreamMatchesFunctional)
{
    // The committed trace must be exactly the functional execution.
    const Program prog = tracedProgram();

    SparseMemory fmem;
    prog.load(fmem);
    FuncSim func(fmem, prog.entry);
    std::vector<Addr> golden_pcs;
    while (!func.halted())
        golden_pcs.push_back(func.step().pc);

    SparseMemory mem;
    prog.load(mem);
    OutOfOrderCore core(presets::baseline(), mem, prog.entry);
    std::vector<Addr> committed_pcs;
    core.setTraceHook([&](const TraceEvent &ev) {
        if (ev.stage == TraceStage::Commit)
            committed_pcs.push_back(ev.pc);
    });
    core.run(1'000'000);

    ASSERT_EQ(committed_pcs.size(), golden_pcs.size());
    EXPECT_EQ(committed_pcs, golden_pcs);
}

TEST(Trace, FormatterIsReadable)
{
    TraceEvent ev;
    ev.cycle = 42;
    ev.stage = TraceStage::Issue;
    ev.seq = 7;
    ev.pc = 0x10010;
    ev.inst.op = Opcode::ADD;
    ev.inst.ra = 1;
    ev.inst.rb = 2;
    ev.inst.rc = 3;
    ev.packed = true;
    const std::string line = formatTraceEvent(ev);
    EXPECT_NE(line.find("[42]"), std::string::npos);
    EXPECT_NE(line.find("issue"), std::string::npos);
    EXPECT_NE(line.find("#7"), std::string::npos);
    EXPECT_NE(line.find("0x10010"), std::string::npos);
    EXPECT_NE(line.find("add r3, r1, r2"), std::string::npos);
    EXPECT_NE(line.find("(packed)"), std::string::npos);
}

TEST(Trace, HookRemovalStopsEvents)
{
    const Program prog = tracedProgram();
    SparseMemory mem;
    prog.load(mem);
    OutOfOrderCore core(presets::baseline(), mem, prog.entry);
    u64 events = 0;
    core.setTraceHook([&](const TraceEvent &) { ++events; });
    core.run(100);
    const u64 before = events;
    EXPECT_GT(before, 0u);
    core.setTraceHook({});
    core.run(100);
    EXPECT_EQ(events, before);
}

} // namespace
} // namespace nwsim
