/**
 * Tests for the paper-adjacent extensions: early-out multiply (Section
 * 2.3's PowerPC 603 mechanism, driven by the same width tags) and
 * fast-mode warmup (Section 3.2's methodology).
 */

#include "sim_test_util.hh"

#include "driver/presets.hh"
#include "driver/runner.hh"
#include "workloads/kernels.hh"

namespace nwsim
{
namespace
{

using test::buildProgram;
using test::runDifferential;

Program
multChain(i64 seed, unsigned iters)
{
    // A looped dependent multiply chain (warm I-cache), so the multiply
    // latency is the critical path.
    return buildProgram([seed, iters](Assembler &as) {
        as.li(1, seed);
        as.li(2, static_cast<i64>(iters));
        as.label("loop");
        for (unsigned i = 0; i < 20; ++i) {
            as.mul(1, 1, 1);            // dependent multiply chain
            as.andi(1, 1, 0x7fff);      // keep it narrow
            as.addi(1, 1, 3);
        }
        as.subi(2, 2, 1);
        as.bne(2, "loop");
        as.halt();
    });
}

TEST(EarlyOutMultiply, NarrowChainsSpeedUp)
{
    const Program prog = multChain(5, 150);
    CoreConfig base = presets::baseline();
    CoreConfig early = presets::baseline();
    early.earlyOutMultiply = true;
    auto slow = runDifferential(prog, base);
    auto fast = runDifferential(prog, early);
    // Each narrow multiply drops from 3 cycles to 1 on the critical
    // path: expect a large cycle reduction, identical results
    // (runDifferential checks architectural equality).
    EXPECT_LT(fast.core->stats().cycles,
              slow.core->stats().cycles * 8 / 10);
}

TEST(EarlyOutMultiply, WideMultipliesUnaffected)
{
    const Program prog = buildProgram([](Assembler &as) {
        as.li(1, i64{1} << 40);
        as.li(2, 12345);
        as.li(3, 100);
        as.label("loop");
        for (unsigned i = 0; i < 10; ++i) {
            as.mul(2, 2, 1);        // one wide operand: no early out
            as.srli(2, 2, 50);
            as.addi(2, 2, 7);
        }
        as.subi(3, 3, 1);
        as.bne(3, "loop");
        as.halt();
    });
    CoreConfig early = presets::baseline();
    early.earlyOutMultiply = true;
    auto base = runDifferential(prog, presets::baseline());
    auto ext = runDifferential(prog, early);
    EXPECT_EQ(base.core->stats().cycles, ext.core->stats().cycles);
}

TEST(FastForward, ArchitecturalStateMatchesDetailed)
{
    const Workload w = makeCompress(1);
    const Program prog = w.program();
    const test::GoldenRun golden = test::runGolden(prog);

    SparseMemory mem;
    prog.load(mem);
    OutOfOrderCore core(presets::baseline(), mem, prog.entry);
    const u64 ffwd = core.fastForward(20000);
    EXPECT_EQ(ffwd, 20000u);
    core.run(200'000'000);
    EXPECT_TRUE(core.done());
    EXPECT_EQ(ffwd + core.stats().committed, golden.instCount);
    for (RegIndex r = 0; r < numIntRegs; ++r)
        EXPECT_EQ(core.reg(r), golden.regs[r]) << "r" << int(r);
    EXPECT_EQ(mem.read(prog.symbol("checksum"), 8),
              compressReference(1));
}

TEST(FastForward, StopsCleanlyBeforeHalt)
{
    const Program prog = buildProgram([](Assembler &as) {
        as.li(1, 5);
        as.addi(1, 1, 1);
        as.halt();
    });
    SparseMemory mem;
    prog.load(mem);
    OutOfOrderCore core(presets::baseline(), mem, prog.entry);
    const u64 ffwd = core.fastForward(1000);
    EXPECT_EQ(ffwd, 2u);            // halt left for detailed mode
    EXPECT_FALSE(core.done());
    core.run(100);
    EXPECT_TRUE(core.done());
    EXPECT_EQ(core.stats().committed, 1u);
    EXPECT_EQ(core.reg(1), 6u);
}

TEST(FastForward, WarmsCachesAndPredictor)
{
    const Program prog = makeGo(45).program();
    // Cold detailed run of a short window vs the same window after a
    // fast-forward warmup: warmed caches/predictor must give a better
    // (or equal) IPC.
    RunOptions cold;
    cold.warmupInsts = 0;
    cold.measureInsts = 50000;
    cold.fastWarmup = false;
    RunOptions warm;
    warm.warmupInsts = 200000;
    warm.measureInsts = 50000;
    warm.fastWarmup = true;
    const RunResult r_cold =
        runProgram(prog, presets::baseline(), cold, "go", "cold");
    const RunResult r_warm =
        runProgram(prog, presets::baseline(), warm, "go", "warm");
    EXPECT_GT(r_warm.ipc(), r_cold.ipc());
    // The predictor was trained during fast warmup.
    EXPECT_LT(r_warm.bpred.condMispredictRate(), 0.2);
}

TEST(FastForward, WorksInPerfectPredictionMode)
{
    const Program prog = makePerl(2).program();
    const test::GoldenRun golden = test::runGolden(prog);
    SparseMemory mem;
    prog.load(mem);
    OutOfOrderCore core(presets::baseline(true), mem, prog.entry);
    const u64 ffwd = core.fastForward(30000);
    core.run(200'000'000);
    EXPECT_TRUE(core.done());
    EXPECT_EQ(core.stats().mispredictSquashes, 0u);
    EXPECT_EQ(ffwd + core.stats().committed, golden.instCount);
}

TEST(FastForward, RunnerIntegration)
{
    const Program prog = makeGcc(2).program();
    RunOptions opts;
    opts.warmupInsts = 30000;
    opts.measureInsts = 60000;
    opts.fastWarmup = true;
    const RunResult r =
        runProgram(prog, presets::baseline(), opts, "gcc", "fastwarm");
    EXPECT_EQ(r.warmupCommitted, 30000u);
    EXPECT_EQ(r.measuredCommitted, 60000u);
    EXPECT_GT(r.ipc(), 0.1);
}

} // namespace
} // namespace nwsim
