/**
 * Decode-cache equivalence suite (src/func/decode_cache.hh,
 * src/pipeline/fetch_cache.hh).
 *
 * The basic-block decode cache and the fetch-block decode cache must be
 * pure host-side speedups: simulation semantics, timing, and every
 * reported statistic must be identical with the caches on (the default)
 * and off (`+nodecodecache`). This suite is the proof, diffed per named
 * stat field (tests/stat_diff.hh):
 *
 *  - Grid stat-identity: every workload x a config grid covering all
 *    packing modes, both issue widths, 8-wide decode, and perfect
 *    prediction — cached vs uncached, every field compared by name.
 *  - Deep-window identity: one long packing-replay run.
 *  - Interpreter identity: FuncSim cached vs uncached retire the same
 *    architected state, instruction count, and halt PC.
 *  - Block boundaries: branching into the middle of a cached block,
 *    backward-branch loop re-entry (with hit-rate assertions), and
 *    wholesale invalidation when a new program image is loaded.
 *  - Fuzz: 64 seeded nwfuzz programs agree cached vs uncached, and a
 *    slice of them runs clean under the full check session (cosim
 *    oracle + invariant checker), whose golden model is itself
 *    decode-cached.
 *  - Sampled seam: the drainInFlight -> fastForward handoff of sampled
 *    runs produces byte-identical SampleSummary wire blobs with and
 *    without the caches.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/fuzz.hh"
#include "check/session.hh"
#include "exp/configs.hh"
#include "exp/wire.hh"
#include "func/decode_cache.hh"
#include "func/func_sim.hh"
#include "sample/controller.hh"
#include "sim_test_util.hh"
#include "stat_diff.hh"
#include "workloads/workload.hh"

namespace
{

using namespace nwsim;
using test::buildProgram;
using test::fastMemory;
using test::statIdentical;

/** Run @p prog under @p spec, optionally with the caches bypassed. */
RunResult
run(const Program &prog, const std::string &workload,
    const std::string &spec, bool uncached, const RunOptions &opts)
{
    const CoreConfig cfg = exp::configBySpec(
        uncached ? spec + "+nodecodecache" : spec);
    return runProgram(prog, cfg, opts, workload, spec);
}

// ---- 1. Grid stat-identity ---------------------------------------------

TEST(DecodeCache, GridStatIdentical)
{
    // Strict + replay packing, both issue widths, 8-wide decode, and
    // perfect prediction (the latter exercises the oracle FuncSim in
    // lockstep with fastForward): every consumer of the caches.
    const std::vector<std::string> specs = {
        "baseline",
        "packing",
        "packing-replay",
        "issue8",
        "packing-replay+decode8+perfect",
    };
    RunOptions opts;
    opts.warmupInsts = 3000;
    opts.measureInsts = 12000;

    for (const Workload &w : allWorkloads()) {
        const Program prog = w.program();
        for (const std::string &spec : specs) {
            SCOPED_TRACE(w.name + "/" + spec);
            const RunResult cached =
                run(prog, w.name, spec, false, opts);
            const RunResult uncached =
                run(prog, w.name, spec, true, opts);
            EXPECT_TRUE(statIdentical(cached, uncached));
            EXPECT_EQ(cached.warmupCommitted, uncached.warmupCommitted);
            // The caches were actually in play on the cached side...
            EXPECT_GT(cached.decodeCache.lookups, 0u);
            // ...and actually bypassed on the uncached side.
            EXPECT_EQ(uncached.decodeCache.lookups, 0u);
        }
    }
}

TEST(DecodeCache, DeepWindowStatIdentical)
{
    // One long run: deep enough to wrap every ring/wheel/bitmap many
    // times, exercise replay traps at realistic density, and hit the
    // fastForward warmup path with a fully chained block cache.
    RunOptions opts;
    opts.warmupInsts = 20000;
    opts.measureInsts = 120000;
    const Program prog = workloadByName("perl").program();
    const RunResult cached =
        run(prog, "perl", "packing-replay", false, opts);
    const RunResult uncached =
        run(prog, "perl", "packing-replay", true, opts);
    EXPECT_TRUE(statIdentical(cached, uncached));
    EXPECT_GT(cached.decodeCache.hitRate(), 0.95);
}

// ---- 2. Interpreter identity -------------------------------------------

void
expectFuncSimIdentical(const Program &prog, u64 max_steps)
{
    SparseMemory memCached, memUncached;
    prog.load(memCached);
    prog.load(memUncached);
    FuncSim cached(memCached, prog.entry);
    FuncSim uncached(memUncached, prog.entry, layout::stackTop,
                     /*use_decode_cache=*/false);
    cached.run(max_steps);
    uncached.run(max_steps);

    EXPECT_EQ(cached.pc(), uncached.pc());
    EXPECT_EQ(cached.halted(), uncached.halted());
    EXPECT_EQ(cached.instCount(), uncached.instCount());
    for (unsigned r = 0; r < numIntRegs; ++r) {
        const auto ri = static_cast<RegIndex>(r);
        EXPECT_EQ(cached.reg(ri), uncached.reg(ri))
            << "register r" << r;
    }
}

TEST(DecodeCache, FuncSimIdenticalOnWorkloads)
{
    for (const char *wname : {"perl", "gsm-decode", "li"}) {
        SCOPED_TRACE(wname);
        expectFuncSimIdentical(workloadByName(wname).program(), 200000);
    }
}

// ---- 3. Block-boundary edge cases --------------------------------------

TEST(DecodeCache, BranchIntoMidBlockCreatesOverlappingBlock)
{
    // The fall-through path decodes one straight-line block; the
    // backward branch then re-enters at its *middle*. Blocks are keyed
    // by start PC, so the re-entry must decode a fresh, overlapping
    // block rather than corrupt or split the first one.
    const Program prog = buildProgram([](Assembler &as) {
        as.li(1, 0);
        as.li(2, 3); // outer trips
        as.label("head");
        as.addi(1, 1, 1); // block A starts here...
        as.label("mid");
        as.addi(1, 1, 16); // ...branch target lands here, mid-A
        as.addi(1, 1, 256);
        as.subi(2, 2, 1);
        as.bne(2, "mid");
        as.halt();
    });
    SparseMemory mem;
    prog.load(mem);

    DecodeCache dc(mem);
    dc.refresh();
    const DecodeCache::Block &a = dc.blockAt(prog.entry);
    EXPECT_EQ(a.startPc, prog.entry);
    ASSERT_GT(a.ops.size(), 3u);
    // The branch terminator's taken target sits inside block A.
    const Addr mid = a.ops.back().takenTarget;
    ASSERT_GT(mid, a.startPc);
    ASSERT_LT(mid, a.endPc());

    const size_t before = dc.blockCount();
    const DecodeCache::Block &m = dc.chainTaken(a);
    EXPECT_EQ(m.startPc, mid);
    EXPECT_EQ(dc.blockCount(), before + 1)
        << "mid-block entry must create a new overlapping block";
    // Overlap is real: both blocks decode the shared tail identically.
    const size_t off = (mid - a.startPc) / 4;
    ASSERT_EQ(a.ops.size() - off, m.ops.size());
    for (size_t i = 0; i < m.ops.size(); ++i) {
        EXPECT_EQ(a.ops[off + i].pc, m.ops[i].pc);
        EXPECT_EQ(a.ops[off + i].inst.op, m.ops[i].inst.op);
    }
    // Block A is untouched by the overlap.
    EXPECT_EQ(dc.blockAt(prog.entry).ops.size(), a.ops.size());

    // And the program itself runs identically either way.
    expectFuncSimIdentical(prog, 1000);
}

TEST(DecodeCache, LoopReentryHitsMemoizedChain)
{
    // A tight backward-branch loop: after the first trip every block
    // transition must be served by the memoized seq/taken links.
    const Program prog = buildProgram([](Assembler &as) {
        as.li(1, 0);
        as.li(2, 5000);
        as.label("loop");
        as.addi(1, 1, 3);
        as.xori(3, 1, 0x55);
        as.add(1, 1, 3);
        as.subi(2, 2, 1);
        as.bne(2, "loop");
        as.halt();
    });
    SparseMemory mem;
    prog.load(mem);
    FuncSim sim(mem, prog.entry);
    sim.run(100000);
    EXPECT_TRUE(sim.halted());

    const DecodeCacheStats &dc = sim.decodeCacheStats();
    EXPECT_GT(dc.lookups, 4000u);
    EXPECT_GT(dc.hitRate(), 0.99)
        << "loop re-entry should be all memoized-chain hits";
}

TEST(DecodeCache, ProgramReloadInvalidates)
{
    const Program progA = buildProgram([](Assembler &as) {
        as.xor_(1, 1, 1);
        as.halt();
    });
    const Program progB = buildProgram([](Assembler &as) {
        as.mul(2, 2, 2); // different op at the same PC
        as.halt();
    });
    ASSERT_EQ(progA.entry, progB.entry);

    SparseMemory mem;
    DecodeCache dc(mem); // bound before any image exists
    progA.load(mem);
    EXPECT_TRUE(dc.refresh()) << "image load must bump the generation";
    const Opcode opA = dc.blockAt(progA.entry).ops[0].inst.op;
    EXPECT_FALSE(dc.refresh()) << "no reload, cache must stay valid";
    EXPECT_GT(dc.blockCount(), 0u);

    // Loading a new image over the same memory bumps the generation;
    // the next refresh must drop every block and re-decode.
    progB.load(mem);
    EXPECT_TRUE(dc.refresh());
    EXPECT_EQ(dc.blockCount(), 0u);
    const Opcode opB = dc.blockAt(progB.entry).ops[0].inst.op;
    EXPECT_NE(opA, opB) << "stale block survived the reload";
}

// ---- 4. Fuzzed programs ------------------------------------------------

TEST(DecodeCache, FuzzSeedsIdenticalCachedVsUncached)
{
    // 64 seeded random programs (narrow-width/carry-boundary biased,
    // data-dependent branches): the interpreters must agree on every
    // architected register, the instruction count, and the halt PC.
    for (u64 seed = 1; seed <= 64; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const FuzzCase fc = generateFuzzCase(seed);
        const Program prog = materializeFuzzCase(fc);
        expectFuncSimIdentical(prog, 4 * fuzzCaseInstCount(fc));
    }
}

TEST(DecodeCache, FuzzSeedsCleanUnderCheckSession)
{
    // A slice of the seeds through the full check session: the cosim
    // oracle (decode-cached golden model) and the invariant checker
    // stay clean against the decode-cached detailed core.
    const std::vector<FuzzConfig> matrix = {
        {"baseline", exp::configBySpec("baseline")},
        {"packing-replay", exp::configBySpec("packing-replay")},
    };
    for (u64 seed = 1; seed <= 8; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const FuzzCase fc = generateFuzzCase(seed);
        const auto failure = runFuzzCase(fc, matrix);
        EXPECT_FALSE(failure.has_value())
            << failure->configName << ": " << failure->report;
    }
}

// ---- 5. Sampled-run seam (drainInFlight -> fastForward) ----------------

TEST(DecodeCache, SampledSummaryWireIdentical)
{
    // Sampled runs alternate detailed windows with fastForward streams
    // — every interval crosses the drainInFlight -> fastForward seam.
    // The interval schedule, the per-interval measurements, and hence
    // the packed SampleSummary error bars must not depend on whether
    // fastForward is decode-cached. Randomized-offset mode included:
    // its offsets derive from the instruction stream positions the
    // cached path must reproduce exactly.
    const std::vector<std::string> specs = {
        "baseline+sample=4000:500:1500",
        "packing-replay+sample=4000:500:1500:rand:7",
    };
    RunOptions base;
    base.warmupInsts = 3000;
    base.measureInsts = 30000;

    for (const char *wname : {"perl", "gsm-decode"}) {
        const Program prog = workloadByName(wname).program();
        for (const std::string &spec : specs) {
            SCOPED_TRACE(std::string(wname) + "/" + spec);
            RunOptions opts = base;
            opts.sample = exp::sampleBySpec(spec);
            ASSERT_TRUE(opts.sample.enabled);

            const RunResult cached = sample::runSampledProgram(
                prog, exp::configBySpec(spec), opts, wname, spec);
            const RunResult uncached = sample::runSampledProgram(
                prog, exp::configBySpec(spec + "+nodecodecache"), opts,
                wname, spec);

            EXPECT_TRUE(cached.sample.sampled);
            EXPECT_GT(cached.sample.intervals, 3u);
            EXPECT_EQ(exp::packSampleSummary(cached.sample),
                      exp::packSampleSummary(uncached.sample));
            EXPECT_TRUE(statIdentical(cached, uncached));
        }
    }
}

} // namespace
