/**
 * Decode-cache equivalence suite (src/func/decode_cache.hh,
 * src/pipeline/fetch_cache.hh).
 *
 * The basic-block decode cache and the fetch-block decode cache must be
 * pure host-side speedups: simulation semantics, timing, and every
 * reported statistic must be identical with the caches on (the default)
 * and off (`+nodecodecache`). This suite is the proof, diffed per named
 * stat field (tests/stat_diff.hh):
 *
 *  - Grid stat-identity: every workload x a config grid covering all
 *    packing modes, both issue widths, 8-wide decode, and perfect
 *    prediction — cached vs uncached, every field compared by name.
 *  - Deep-window identity: one long packing-replay run.
 *  - Interpreter identity: FuncSim cached vs uncached retire the same
 *    architected state, instruction count, and halt PC.
 *  - Block boundaries: branching into the middle of a cached block,
 *    backward-branch loop re-entry (with hit-rate assertions), and
 *    wholesale invalidation when a new program image is loaded.
 *  - Fuzz: 64 seeded nwfuzz programs agree cached vs uncached, and a
 *    slice of them runs clean under the full check session (cosim
 *    oracle + invariant checker), whose golden model is itself
 *    decode-cached.
 *  - Sampled seam: the drainInFlight -> fastForward handoff of sampled
 *    runs produces byte-identical SampleSummary wire blobs with and
 *    without the caches.
 *  - Superblock traces (src/func/superblock.hh): the trace layer above
 *    the block cache must be stat-invisible too — guard side exits in
 *    both directions, self-closing loop traces, oracle-lockstep
 *    (perfect) mode, reload invalidation, and 64 fuzz seeds, each
 *    compared traced vs `+notrace` / `+nodecodecache`. (The warm
 *    zero-allocation assertion lives with the global operator-new
 *    counter in tests/test_sched_equivalence.cc.)
 *  - Exact stat counters: the lookup/hit bookkeeping is pinned to a
 *    hand-walked CFG, including the chain-link asymmetry where a
 *    link's first resolution is a miss even when the successor block
 *    is already decoded.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/fuzz.hh"
#include "check/session.hh"
#include "exp/configs.hh"
#include "exp/wire.hh"
#include "func/decode_cache.hh"
#include "func/func_sim.hh"
#include "func/superblock.hh"
#include "sample/controller.hh"
#include "sim_test_util.hh"
#include "stat_diff.hh"
#include "workloads/workload.hh"

namespace
{

using namespace nwsim;
using test::buildProgram;
using test::fastMemory;
using test::statIdentical;

/** Run @p prog under @p spec, optionally with the caches bypassed. */
RunResult
run(const Program &prog, const std::string &workload,
    const std::string &spec, bool uncached, const RunOptions &opts)
{
    const CoreConfig cfg = exp::configBySpec(
        uncached ? spec + "+nodecodecache" : spec);
    return runProgram(prog, cfg, opts, workload, spec);
}

// ---- 1. Grid stat-identity ---------------------------------------------

TEST(DecodeCache, GridStatIdentical)
{
    // Strict + replay packing, both issue widths, 8-wide decode, and
    // perfect prediction (the latter exercises the oracle FuncSim in
    // lockstep with fastForward): every consumer of the caches.
    const std::vector<std::string> specs = {
        "baseline",
        "packing",
        "packing-replay",
        "issue8",
        "packing-replay+decode8+perfect",
    };
    RunOptions opts;
    opts.warmupInsts = 3000;
    opts.measureInsts = 12000;

    for (const Workload &w : allWorkloads()) {
        const Program prog = w.program();
        for (const std::string &spec : specs) {
            SCOPED_TRACE(w.name + "/" + spec);
            const RunResult cached =
                run(prog, w.name, spec, false, opts);
            const RunResult uncached =
                run(prog, w.name, spec, true, opts);
            EXPECT_TRUE(statIdentical(cached, uncached));
            EXPECT_EQ(cached.warmupCommitted, uncached.warmupCommitted);
            // The caches were actually in play on the cached side...
            EXPECT_GT(cached.decodeCache.lookups, 0u);
            // ...and actually bypassed on the uncached side.
            EXPECT_EQ(uncached.decodeCache.lookups, 0u);
        }
    }
}

TEST(DecodeCache, DeepWindowStatIdentical)
{
    // One long run: deep enough to wrap every ring/wheel/bitmap many
    // times, exercise replay traps at realistic density, and hit the
    // fastForward warmup path with a fully chained block cache.
    RunOptions opts;
    opts.warmupInsts = 20000;
    opts.measureInsts = 120000;
    const Program prog = workloadByName("perl").program();
    const RunResult cached =
        run(prog, "perl", "packing-replay", false, opts);
    const RunResult uncached =
        run(prog, "perl", "packing-replay", true, opts);
    EXPECT_TRUE(statIdentical(cached, uncached));
    EXPECT_GT(cached.decodeCache.hitRate(), 0.95);
}

// ---- 2. Interpreter identity -------------------------------------------

void
expectFuncSimIdentical(const Program &prog, u64 max_steps)
{
    SparseMemory memCached, memUncached;
    prog.load(memCached);
    prog.load(memUncached);
    FuncSim cached(memCached, prog.entry);
    FuncSim uncached(memUncached, prog.entry, layout::stackTop,
                     /*use_decode_cache=*/false);
    cached.run(max_steps);
    uncached.run(max_steps);

    EXPECT_EQ(cached.pc(), uncached.pc());
    EXPECT_EQ(cached.halted(), uncached.halted());
    EXPECT_EQ(cached.instCount(), uncached.instCount());
    for (unsigned r = 0; r < numIntRegs; ++r) {
        const auto ri = static_cast<RegIndex>(r);
        EXPECT_EQ(cached.reg(ri), uncached.reg(ri))
            << "register r" << r;
    }
}

TEST(DecodeCache, FuncSimIdenticalOnWorkloads)
{
    for (const char *wname : {"perl", "gsm-decode", "li"}) {
        SCOPED_TRACE(wname);
        expectFuncSimIdentical(workloadByName(wname).program(), 200000);
    }
}

// ---- 3. Block-boundary edge cases --------------------------------------

TEST(DecodeCache, BranchIntoMidBlockCreatesOverlappingBlock)
{
    // The fall-through path decodes one straight-line block; the
    // backward branch then re-enters at its *middle*. Blocks are keyed
    // by start PC, so the re-entry must decode a fresh, overlapping
    // block rather than corrupt or split the first one.
    const Program prog = buildProgram([](Assembler &as) {
        as.li(1, 0);
        as.li(2, 3); // outer trips
        as.label("head");
        as.addi(1, 1, 1); // block A starts here...
        as.label("mid");
        as.addi(1, 1, 16); // ...branch target lands here, mid-A
        as.addi(1, 1, 256);
        as.subi(2, 2, 1);
        as.bne(2, "mid");
        as.halt();
    });
    SparseMemory mem;
    prog.load(mem);

    DecodeCache dc(mem);
    dc.refresh();
    const DecodeCache::Block &a = dc.blockAt(prog.entry);
    EXPECT_EQ(a.startPc, prog.entry);
    ASSERT_GT(a.ops.size(), 3u);
    // The branch terminator's taken target sits inside block A.
    const Addr mid = a.ops.back().takenTarget;
    ASSERT_GT(mid, a.startPc);
    ASSERT_LT(mid, a.endPc());

    const size_t before = dc.blockCount();
    const DecodeCache::Block &m = dc.chainTaken(a);
    EXPECT_EQ(m.startPc, mid);
    EXPECT_EQ(dc.blockCount(), before + 1)
        << "mid-block entry must create a new overlapping block";
    // Overlap is real: both blocks decode the shared tail identically.
    const size_t off = (mid - a.startPc) / 4;
    ASSERT_EQ(a.ops.size() - off, m.ops.size());
    for (size_t i = 0; i < m.ops.size(); ++i) {
        EXPECT_EQ(a.ops[off + i].pc, m.ops[i].pc);
        EXPECT_EQ(a.ops[off + i].inst.op, m.ops[i].inst.op);
    }
    // Block A is untouched by the overlap.
    EXPECT_EQ(dc.blockAt(prog.entry).ops.size(), a.ops.size());

    // And the program itself runs identically either way.
    expectFuncSimIdentical(prog, 1000);
}

TEST(DecodeCache, LoopReentryHitsMemoizedChain)
{
    // A tight backward-branch loop: after the first trip every block
    // transition must be served by the memoized seq/taken links.
    const Program prog = buildProgram([](Assembler &as) {
        as.li(1, 0);
        as.li(2, 5000);
        as.label("loop");
        as.addi(1, 1, 3);
        as.xori(3, 1, 0x55);
        as.add(1, 1, 3);
        as.subi(2, 2, 1);
        as.bne(2, "loop");
        as.halt();
    });
    SparseMemory mem;
    prog.load(mem);
    FuncSim sim(mem, prog.entry);
    sim.run(100000);
    EXPECT_TRUE(sim.halted());

    const DecodeCacheStats &dc = sim.decodeCacheStats();
    EXPECT_GT(dc.lookups, 4000u);
    EXPECT_GT(dc.hitRate(), 0.99)
        << "loop re-entry should be all memoized-chain hits";
}

TEST(DecodeCache, ProgramReloadInvalidates)
{
    const Program progA = buildProgram([](Assembler &as) {
        as.xor_(1, 1, 1);
        as.halt();
    });
    const Program progB = buildProgram([](Assembler &as) {
        as.mul(2, 2, 2); // different op at the same PC
        as.halt();
    });
    ASSERT_EQ(progA.entry, progB.entry);

    SparseMemory mem;
    DecodeCache dc(mem); // bound before any image exists
    progA.load(mem);
    EXPECT_TRUE(dc.refresh()) << "image load must bump the generation";
    const Opcode opA = dc.blockAt(progA.entry).ops[0].inst.op;
    EXPECT_FALSE(dc.refresh()) << "no reload, cache must stay valid";
    EXPECT_GT(dc.blockCount(), 0u);

    // Loading a new image over the same memory bumps the generation;
    // the next refresh must drop every block and re-decode.
    progB.load(mem);
    EXPECT_TRUE(dc.refresh());
    EXPECT_EQ(dc.blockCount(), 0u);
    const Opcode opB = dc.blockAt(progB.entry).ops[0].inst.op;
    EXPECT_NE(opA, opB) << "stale block survived the reload";
}

// ---- 4. Fuzzed programs ------------------------------------------------

TEST(DecodeCache, FuzzSeedsIdenticalCachedVsUncached)
{
    // 64 seeded random programs (narrow-width/carry-boundary biased,
    // data-dependent branches): the interpreters must agree on every
    // architected register, the instruction count, and the halt PC.
    for (u64 seed = 1; seed <= 64; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const FuzzCase fc = generateFuzzCase(seed);
        const Program prog = materializeFuzzCase(fc);
        expectFuncSimIdentical(prog, 4 * fuzzCaseInstCount(fc));
    }
}

TEST(DecodeCache, FuzzSeedsCleanUnderCheckSession)
{
    // A slice of the seeds through the full check session: the cosim
    // oracle (decode-cached golden model) and the invariant checker
    // stay clean against the decode-cached detailed core.
    const std::vector<FuzzConfig> matrix = {
        {"baseline", exp::configBySpec("baseline")},
        {"packing-replay", exp::configBySpec("packing-replay")},
    };
    for (u64 seed = 1; seed <= 8; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const FuzzCase fc = generateFuzzCase(seed);
        const auto failure = runFuzzCase(fc, matrix);
        EXPECT_FALSE(failure.has_value())
            << failure->configName << ": " << failure->report;
    }
}

// ---- 5. Sampled-run seam (drainInFlight -> fastForward) ----------------

TEST(DecodeCache, SampledSummaryWireIdentical)
{
    // Sampled runs alternate detailed windows with fastForward streams
    // — every interval crosses the drainInFlight -> fastForward seam.
    // The interval schedule, the per-interval measurements, and hence
    // the packed SampleSummary error bars must not depend on whether
    // fastForward is decode-cached. Randomized-offset mode included:
    // its offsets derive from the instruction stream positions the
    // cached path must reproduce exactly.
    const std::vector<std::string> specs = {
        "baseline+sample=4000:500:1500",
        "packing-replay+sample=4000:500:1500:rand:7",
    };
    RunOptions base;
    base.warmupInsts = 3000;
    base.measureInsts = 30000;

    for (const char *wname : {"perl", "gsm-decode"}) {
        const Program prog = workloadByName(wname).program();
        for (const std::string &spec : specs) {
            SCOPED_TRACE(std::string(wname) + "/" + spec);
            RunOptions opts = base;
            opts.sample = exp::sampleBySpec(spec);
            ASSERT_TRUE(opts.sample.enabled);

            const RunResult cached = sample::runSampledProgram(
                prog, exp::configBySpec(spec), opts, wname, spec);
            const RunResult uncached = sample::runSampledProgram(
                prog, exp::configBySpec(spec + "+nodecodecache"), opts,
                wname, spec);

            EXPECT_TRUE(cached.sample.sampled);
            EXPECT_GT(cached.sample.intervals, 3u);
            EXPECT_EQ(exp::packSampleSummary(cached.sample),
                      exp::packSampleSummary(uncached.sample));
            EXPECT_TRUE(statIdentical(cached, uncached));
        }
    }
}

// ---- 6. Superblock traces ----------------------------------------------

/**
 * Fast-forward @p prog to completion on a core built from @p spec,
 * asserting the architected result matches the FuncSim golden model.
 * Returns the superblock counters for trace-activity assertions.
 */
SuperblockStats
ffGolden(const Program &prog, const std::string &spec, u64 budget)
{
    const test::GoldenRun golden = test::runGolden(prog);
    EXPECT_TRUE(golden.halted) << "golden model did not halt";

    SparseMemory mem;
    prog.load(mem);
    OutOfOrderCore core(exp::configBySpec(spec), mem, prog.entry);
    // fastForward stops just short of HALT (the HALT itself retires in
    // detailed mode), so a run to completion covers instCount - 1.
    const u64 ffed = core.fastForward(budget);
    EXPECT_LT(ffed, budget) << spec << ": program never reached HALT";
    EXPECT_EQ(ffed + 1, golden.instCount) << spec;
    for (RegIndex r = 0; r < numIntRegs; ++r)
        EXPECT_EQ(core.reg(r), golden.regs[r]) << spec << " r" << int(r);
    return core.superblockStats();
}

TEST(Superblock, GuardExitWhenTrainedTakenGoesNotTaken)
{
    // A counted loop: the backward branch is taken well past the
    // promotion threshold, so the formed trace guards on TAKEN and
    // closes into a loop. The final iteration falls through — the
    // guard must side-exit to the architecturally correct fall-through
    // PC (the HALT) instead of restarting the trace.
    const Program prog = buildProgram([](Assembler &as) {
        as.li(1, 0);
        as.li(2, 300);
        as.label("loop");
        as.addi(1, 1, 3);
        as.xori(3, 1, 0x55);
        as.add(1, 1, 3);
        as.subi(2, 2, 1);
        as.bne(2, "loop");
        as.halt();
    });
    const SuperblockStats traced = ffGolden(prog, "baseline", 100000);
    EXPECT_GE(traced.formed, 1u);
    EXPECT_GE(traced.loopClosures, 1u);
    EXPECT_GE(traced.guardExits, 1u) << "loop-exit must leave via guard";
    EXPECT_GT(traced.tracedInsts, 100u);

    // The escape hatches really do disable the layer.
    const SuperblockStats notrace =
        ffGolden(prog, "baseline+notrace", 100000);
    EXPECT_EQ(notrace.formed, 0u);
    EXPECT_EQ(notrace.entries, 0u);
    const SuperblockStats nodc =
        ffGolden(prog, "baseline+nodecodecache", 100000);
    EXPECT_EQ(nodc.formed, 0u);
    EXPECT_EQ(nodc.entries, 0u);
}

TEST(Superblock, GuardExitWhenTrainedNotTakenGoesTaken)
{
    // A rarely-taken conditional inside a hot loop: at formation time
    // the branch has gone not-taken on every observed trip, so the
    // trace stitches the fall-through and guards on NOT-TAKEN. On the
    // trips where it *is* taken the guard must side-exit to the static
    // taken target (the "rare" block, which rejoins the loop).
    const Program prog = buildProgram([](Assembler &as) {
        as.li(1, 0);
        as.li(2, 200);
        as.label("loop");
        as.andi(3, 2, 63); // zero when r2 % 64 == 0 (3 trips of 200)
        as.addi(1, 1, 3);
        as.beq(3, "rare");
        as.label("cont");
        as.subi(2, 2, 1);
        as.bne(2, "loop");
        as.halt();
        as.label("rare");
        as.addi(1, 1, 1000);
        as.br("cont");
    });
    const SuperblockStats traced = ffGolden(prog, "baseline", 100000);
    EXPECT_GE(traced.formed, 1u);
    EXPECT_GE(traced.guardExits, 3u)
        << "each rare-taken trip must leave via the not-taken guard";
}

TEST(Superblock, PerfectModeOracleLockstepIdentical)
{
    // Oracle-lockstep (perfect-prediction) traces: the specialized
    // executor steps the golden FuncSim per retired instruction. Run a
    // real workload traced vs +notrace and require field-exact stats.
    RunOptions opts;
    opts.warmupInsts = 20000;
    opts.measureInsts = 20000;
    const Program prog = workloadByName("perl").program();
    const RunResult traced = runProgram(
        prog, exp::configBySpec("baseline+perfect"), opts, "perl",
        "baseline+perfect");
    const RunResult notrace = runProgram(
        prog, exp::configBySpec("baseline+perfect+notrace"), opts,
        "perl", "baseline+perfect+notrace");
    EXPECT_TRUE(statIdentical(traced, notrace));
    EXPECT_EQ(traced.warmupCommitted, notrace.warmupCommitted);
    EXPECT_GT(traced.superblock.formed, 0u);
    EXPECT_GT(traced.superblock.tracedInsts, 0u);
    EXPECT_EQ(notrace.superblock.formed, 0u);
}

TEST(Superblock, WorkloadsTracedStatIdenticalToNoTrace)
{
    // Predictor-warming mode over real workloads: traced vs +notrace,
    // every stat field compared by name.
    RunOptions opts;
    opts.warmupInsts = 20000;
    opts.measureInsts = 12000;
    for (const char *wname : {"gcc", "m88ksim", "compress"}) {
        SCOPED_TRACE(wname);
        const Program prog = workloadByName(wname).program();
        const RunResult traced = runProgram(
            prog, exp::configBySpec("packing-replay"), opts, wname,
            "packing-replay");
        const RunResult notrace = runProgram(
            prog, exp::configBySpec("packing-replay+notrace"), opts,
            wname, "packing-replay+notrace");
        EXPECT_TRUE(statIdentical(traced, notrace));
        EXPECT_EQ(traced.warmupCommitted, notrace.warmupCommitted);
        EXPECT_GT(traced.superblock.entries, 0u)
            << "warmup never entered a trace";
    }
}

TEST(Superblock, SelfOverlappingLoopTraceClosesOnItself)
{
    // The loop head sits mid-way through the entry block, so the loop
    // body is an *overlapping* block (same tail instructions, different
    // start PC). The trace formed at the loop head must close on its
    // own head (kEndLoop), not chase the overlap.
    const Program prog = buildProgram([](Assembler &as) {
        as.li(1, 0);
        as.li(2, 100);
        as.label("loop");
        as.addi(1, 1, 7);
        as.subi(2, 2, 1);
        as.bne(2, "loop");
        as.halt();
    });
    SparseMemory mem;
    prog.load(mem);
    DecodeCache dc(mem);
    dc.refresh();
    SuperblockCache sb(dc, /*perfect=*/false, 64, 13);

    // Entry block runs li..bne; its taken target is the mid-block loop
    // head, which decodes as an overlapping block.
    const DecodeCache::Block &entry = dc.blockAt(prog.entry);
    const DecodeCache::Block &loop = dc.chainTaken(entry);
    ASSERT_GT(loop.startPc, entry.startPc);
    ASSERT_LT(loop.startPc, entry.endPc());

    loop.lastTaken = true; // what the block loop would have recorded
    const SbTrace *t = nullptr;
    for (u32 i = 0; i < SuperblockCache::kPromoteHeat && !t; ++i)
        t = sb.enter(loop);
    ASSERT_NE(t, nullptr) << "promotion threshold did not trigger";
    EXPECT_EQ(t->startPc, loop.startPc);
    EXPECT_TRUE(t->loops);
    EXPECT_EQ(t->blockCount, 1u);
    ASSERT_FALSE(t->ops.empty());
    EXPECT_EQ(t->ops.back().kind, SbOp::kEndLoop);
    EXPECT_EQ(sb.stats().loopClosures, 1u);
    EXPECT_EQ(sb.traceAt(loop.startPc), t);
    EXPECT_EQ(sb.traceAt(prog.entry), nullptr);

    // And the program is functionally unperturbed end to end.
    ffGolden(prog, "baseline", 10000);
}

TEST(Superblock, ProgramReloadInvalidatesTraces)
{
    const Program progA = buildProgram([](Assembler &as) {
        as.li(2, 50);
        as.label("loop");
        as.addi(1, 1, 1);
        as.subi(2, 2, 1);
        as.bne(2, "loop");
        as.halt();
    });
    const Program progB = buildProgram([](Assembler &as) {
        as.mul(2, 2, 2);
        as.halt();
    });

    SparseMemory mem;
    progA.load(mem);
    DecodeCache dc(mem);
    dc.refresh();
    SuperblockCache sb(dc, /*perfect=*/false, 64, 13);

    const DecodeCache::Block &entry = dc.blockAt(progA.entry);
    const DecodeCache::Block &loop = dc.chainTaken(entry);
    loop.lastTaken = true;
    const SbTrace *t = nullptr;
    for (u32 i = 0; i < SuperblockCache::kPromoteHeat && !t; ++i)
        t = sb.enter(loop);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(sb.traceCount(), 1u);

    // Reload: the decode cache notices the generation bump; the trace
    // cache must be dropped with it (the core couples the two in
    // fastForward via refresh() -> invalidate()).
    progB.load(mem);
    ASSERT_TRUE(dc.refresh());
    sb.invalidate();
    EXPECT_EQ(sb.traceCount(), 0u);
    EXPECT_EQ(sb.traceAt(loop.startPc), nullptr);
    EXPECT_EQ(sb.stats().invalidations, 1u);

    // Invalidating an already-empty cache is not a new invalidation.
    sb.invalidate();
    EXPECT_EQ(sb.stats().invalidations, 1u);
}

TEST(Superblock, FuzzSeedsTracedIdenticalToUncached)
{
    // 64 seeded random programs through the traced fast-forward path
    // vs the fully uncached interpreter loop: identical architected
    // registers, instruction counts, and halting. The loop harness is
    // cranked past the promotion threshold (kPromoteHeat entries of the
    // loop-head block) so the runs actually exercise formed traces.
    const CoreConfig traced = exp::configBySpec("baseline");
    const CoreConfig uncached =
        exp::configBySpec("baseline+nodecodecache");
    FuzzParams params;
    params.iterations = 3 * SuperblockCache::kPromoteHeat;
    u64 totalEntries = 0;
    for (u64 seed = 1; seed <= 64; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const FuzzCase fc = generateFuzzCase(seed, params);
        const Program prog = materializeFuzzCase(fc);
        // fuzzCaseInstCount is the *static* size; every loop iteration
        // re-executes a slice of it, so scale by the harness trip count
        // for a budget that lets the whole program run to HALT.
        const u64 budget = (fc.iterations + 4) * fuzzCaseInstCount(fc);

        SparseMemory m1, m2;
        prog.load(m1);
        prog.load(m2);
        OutOfOrderCore c1(traced, m1, prog.entry);
        OutOfOrderCore c2(uncached, m2, prog.entry);
        const u64 n1 = c1.fastForward(budget);
        const u64 n2 = c2.fastForward(budget);
        EXPECT_EQ(n1, n2);
        EXPECT_EQ(c1.done(), c2.done());
        for (RegIndex r = 0; r < numIntRegs; ++r)
            EXPECT_EQ(c1.reg(r), c2.reg(r)) << "r" << int(r);
        totalEntries += c1.superblockStats().entries;
    }
    EXPECT_GT(totalEntries, 0u)
        << "no fuzz seed ever promoted a trace — threshold too high "
           "or the hook is dead";
}

TEST(Superblock, SampledScheduleTracedStatIdenticalToNoTrace)
{
    // Sampled runs interleave traced fast-forward streams with
    // detailed windows; the interval measurements and error bars must
    // not depend on the trace layer.
    const std::string spec = "baseline+sample=4000:500:1500";
    RunOptions opts;
    opts.warmupInsts = 3000;
    opts.measureInsts = 30000;
    opts.sample = exp::sampleBySpec(spec);
    ASSERT_TRUE(opts.sample.enabled);

    const Program prog = workloadByName("perl").program();
    const RunResult traced = sample::runSampledProgram(
        prog, exp::configBySpec(spec), opts, "perl", spec);
    const RunResult notrace = sample::runSampledProgram(
        prog, exp::configBySpec(spec + "+notrace"), opts, "perl", spec);
    EXPECT_TRUE(statIdentical(traced, notrace));
    EXPECT_EQ(exp::packSampleSummary(traced.sample),
              exp::packSampleSummary(notrace.sample));
    EXPECT_GT(traced.superblock.entries, 0u);
    EXPECT_EQ(notrace.superblock.entries, 0u);
}

// ---- 7. Exact stat counters on a hand-walked CFG -----------------------

TEST(DecodeCacheStats, ExactCountersOnKnownCfg)
{
    // Block A ends in a branch whose taken target is A's own start (so
    // the successor is already decoded when the chain link first
    // resolves) and whose fall-through is fresh. Every lookup/hit
    // transition is pinned exactly.
    const Program prog = buildProgram([](Assembler &as) {
        as.label("head");
        as.addi(1, 1, 1);
        as.subi(2, 2, 1);
        as.bne(2, "head");
        as.halt();
    });
    SparseMemory mem;
    prog.load(mem);
    DecodeCache dc(mem);
    dc.refresh();

    // First blockAt: decode. 1 lookup, 0 hits.
    const DecodeCache::Block &a = dc.blockAt(prog.entry);
    EXPECT_EQ(dc.stats().lookups, 1u);
    EXPECT_EQ(dc.stats().hits, 0u);
    EXPECT_EQ(dc.blockCount(), 1u);

    // Repeat blockAt: hash hit. 2/1.
    dc.blockAt(prog.entry);
    EXPECT_EQ(dc.stats().lookups, 2u);
    EXPECT_EQ(dc.stats().hits, 1u);

    // First chainTaken: target is A itself — already decoded, but the
    // *link* is unmemoized, so this is a miss (the probe is the cost
    // the hit rate exposes). 3/1, and no new block.
    const DecodeCache::Block &t = dc.chainTaken(a);
    EXPECT_EQ(&t, &a);
    EXPECT_EQ(dc.stats().lookups, 3u);
    EXPECT_EQ(dc.stats().hits, 1u);
    EXPECT_EQ(dc.blockCount(), 1u);

    // Second chainTaken: memoized link. 4/2.
    dc.chainTaken(a);
    EXPECT_EQ(dc.stats().lookups, 4u);
    EXPECT_EQ(dc.stats().hits, 2u);

    // First chainSeq: fall-through (the HALT block) is fresh — miss
    // and a decode. 5/2, 2 blocks.
    const DecodeCache::Block &s = dc.chainSeq(a);
    EXPECT_EQ(s.startPc, a.endPc());
    EXPECT_EQ(dc.stats().lookups, 5u);
    EXPECT_EQ(dc.stats().hits, 2u);
    EXPECT_EQ(dc.blockCount(), 2u);

    // Second chainSeq: memoized. 6/3.
    dc.chainSeq(a);
    EXPECT_EQ(dc.stats().lookups, 6u);
    EXPECT_EQ(dc.stats().hits, 3u);

    // blockAt on the halt block's PC: hash hit (decoded by the chain
    // resolution above). 7/4.
    dc.blockAt(a.endPc());
    EXPECT_EQ(dc.stats().lookups, 7u);
    EXPECT_EQ(dc.stats().hits, 4u);
}

} // namespace
