/** Unit tests for the thermal model and mode controller. */

#include <gtest/gtest.h>

#include "power/thermal.hh"

namespace nwsim
{
namespace
{

TEST(ThermalModel, StartsAtAmbient)
{
    ThermalModel m;
    EXPECT_DOUBLE_EQ(m.celsius(), 45.0);
}

TEST(ThermalModel, ApproachesSteadyState)
{
    ThermalConfig cfg;
    cfg.ambient = 40.0;
    cfg.rthPerMw = 0.1;
    cfg.tauCycles = 1000.0;
    ThermalModel m(cfg);
    // 300 mW forever: steady state = 40 + 30 = 70 C.
    for (int i = 0; i < 100; ++i)
        m.step(300.0, 1000);
    EXPECT_NEAR(m.celsius(), 70.0, 0.01);
}

TEST(ThermalModel, MonotoneRiseAndDecay)
{
    ThermalModel m;
    double prev = m.celsius();
    for (int i = 0; i < 10; ++i) {
        m.step(800.0, 20000);
        EXPECT_GT(m.celsius(), prev);
        prev = m.celsius();
    }
    for (int i = 0; i < 10; ++i) {
        m.step(100.0, 20000);
        EXPECT_LT(m.celsius(), prev);
        prev = m.celsius();
    }
}

TEST(ThermalModel, TimeConstantScalesStep)
{
    ThermalConfig fast_cfg;
    fast_cfg.tauCycles = 100.0;
    ThermalConfig slow_cfg;
    slow_cfg.tauCycles = 100000.0;
    ThermalModel fast(fast_cfg), slow(slow_cfg);
    fast.step(500.0, 1000);
    slow.step(500.0, 1000);
    EXPECT_GT(fast.celsius(), slow.celsius());
}

TEST(ThermalController, HysteresisSwitching)
{
    ThermalController c(75.0, 70.0);
    EXPECT_EQ(c.mode(), ThermalMode::Performance);
    EXPECT_EQ(c.update(74.0), ThermalMode::Performance);
    EXPECT_EQ(c.update(76.0), ThermalMode::Power);
    // Inside the hysteresis band: stays in Power mode.
    EXPECT_EQ(c.update(72.0), ThermalMode::Power);
    EXPECT_EQ(c.update(74.9), ThermalMode::Power);
    EXPECT_EQ(c.update(69.0), ThermalMode::Performance);
    EXPECT_EQ(c.switches(), 2u);
}

TEST(ThermalController, ClosedLoopOscillates)
{
    // Alternate hot (performance) and cool (power) steady states; the
    // loop must settle into a stable oscillation, never sticking.
    ThermalConfig cfg;
    cfg.tauCycles = 10000.0;
    ThermalModel m(cfg);
    ThermalController c(75.0, 72.0);
    u64 perf_windows = 0, power_windows = 0;
    for (int i = 0; i < 300; ++i) {
        const bool performance = c.mode() == ThermalMode::Performance;
        m.step(performance ? 800.0 : 250.0, 20000);
        c.update(m.celsius());
        (performance ? perf_windows : power_windows) += 1;
    }
    EXPECT_GT(perf_windows, 20u);
    EXPECT_GT(power_windows, 20u);
    EXPECT_GT(c.switches(), 10u);
}

} // namespace
} // namespace nwsim
