/**
 * End-to-end tests of the mechanisms behind the paper's figures, on
 * purpose-built programs (the benches then measure the same effects on
 * the full workload suites).
 */

#include "sim_test_util.hh"

#include "driver/presets.hh"

namespace nwsim
{
namespace
{

using test::buildProgram;
using test::runDifferential;

TEST(Figure1Mechanism, AddressArithmeticCreatesThe33BitJump)
{
    // A pointer-chasing loop over data above 2^32: data values are
    // narrow, address calculations are 33-bit.
    const Program prog = buildProgram([](Assembler &as) {
        as.la(16, "arr");
        as.li(1, 500);
        as.li(2, 0);
        as.label("loop");
        as.andi(3, 1, 63);
        as.slli(4, 3, 3);
        as.add(5, 4, 16);           // 33-bit address
        as.ldq(6, 0, 5);            // narrow data
        as.add(2, 2, 6);
        as.subi(1, 1, 1);
        as.bne(1, "loop");
        as.halt();
        as.dataLabel("arr");
        for (int i = 0; i < 64; ++i)
            as.dataQuad(static_cast<u64>(i * 3));
    });
    auto run = runDifferential(prog, presets::baseline());
    const WidthProfiler &p = run.core->profiler();
    const double at32 = p.cumulativePercent(32);
    const double at33 = p.cumulativePercent(33);
    // The jump at 33 bits (paper Figure 1: "this corresponds to heap
    // and stack references").
    EXPECT_GT(at33 - at32, 20.0);
    EXPECT_GT(at33, 99.0);
    // And a healthy narrow population below 16 bits.
    EXPECT_GT(p.cumulativePercent(16), 40.0);
}

TEST(Figure2Mechanism, WrongPathsIncreaseWidthFluctuation)
{
    // Data-dependent branches select between narrow and wide inputs for
    // the same static consumer instructions. Under realistic prediction
    // the wrong path executes those PCs with the *other* width, so the
    // per-PC fluctuation percentage can only grow.
    auto build = [](Assembler &as) {
        as.li(1, 0xb7e1);           // lfsr
        as.li(2, 3000);
        as.li(20, 7);               // narrow source
        as.li(21, i64{1} << 45);    // wide source
        as.label("loop");
        as.srli(4, 1, 2);
        as.xor_(4, 4, 1);
        as.srli(5, 1, 3);
        as.xor_(4, 4, 5);
        as.andi(4, 4, 1);
        as.srli(1, 1, 1);
        as.slli(5, 4, 15);
        as.or_(1, 1, 5);
        as.beq(4, "use_wide");
        as.mov(22, 20);
        as.br("use");
        as.label("use_wide");
        as.mov(22, 21);
        as.label("use");
        as.add(23, 22, 22);         // width depends on the path taken
        as.add(24, 23, 22);
        as.subi(2, 2, 1);
        as.bne(2, "loop");
        as.halt();
    };
    const Program prog = buildProgram(build);
    auto perfect = runDifferential(prog, presets::baseline(true));
    auto realistic = runDifferential(prog, presets::baseline(false));
    EXPECT_GT(realistic.core->stats().mispredictSquashes, 100u);
    EXPECT_GE(realistic.core->profiler().fluctuationPercent(),
              perfect.core->profiler().fluctuationPercent());
}

TEST(Figure3Mechanism, LoadSourcedOperandsAreTagged)
{
    // Section 4.2: operands arriving straight from loads need the
    // zero-detect on the load path to gate.
    const Program prog = buildProgram([](Assembler &as) {
        as.la(16, "arr");
        as.li(1, 400);
        as.li(2, 0);
        as.label("loop");
        as.andi(3, 1, 31);
        as.slli(4, 3, 3);
        as.add(4, 4, 16);
        as.ldq(5, 0, 4);            // narrow value from memory
        as.add(2, 2, 5);            // consumer: one load-sourced operand
        as.add(6, 5, 5);            // consumer: both load-sourced
        as.subi(1, 1, 1);
        as.bne(1, "loop");
        as.halt();
        as.dataLabel("arr");
        for (int i = 0; i < 32; ++i)
            as.dataQuad(static_cast<u64>(i));
    });
    auto with = runDifferential(prog, presets::baseline());
    EXPECT_GT(with.core->gating().stats().gatedLoadSourced, 300u);

    CoreConfig no_load_zd = presets::baseline();
    no_load_zd.gating.zeroDetectOnLoads = false;
    auto without = runDifferential(prog, no_load_zd);
    // Without load zero-detect, those gated ops are lost...
    EXPECT_LT(without.core->gating().stats().gated16,
              with.core->gating().stats().gated16);
    // ...and the power reduction shrinks.
    EXPECT_LT(without.core->gating().stats().reductionPercent(),
              with.core->gating().stats().reductionPercent());
}

TEST(Figure10Mechanism, ReplayTrapsThrottleBadSpeculation)
{
    // When every replay-packed op would trap (offsets that always carry
    // out of the low 16 bits), replay packing must not corrupt state
    // and must not beat strict packing.
    const Program prog = buildProgram([](Assembler &as) {
        as.li(20, (i64{1} << 32) + 0xffff);     // carries on any add
        as.li(21, 0);
        as.li(1, 300);
        as.label("loop");
        for (unsigned k = 0; k < 6; ++k) {
            as.addi(static_cast<RegIndex>(2 + k), 20,
                    static_cast<i64>(1 + k));
            as.add(21, 21, static_cast<RegIndex>(2 + k));
        }
        as.subi(1, 1, 1);
        as.bne(1, "loop");
        as.halt();
    });
    auto strict = runDifferential(prog, presets::packing(false));
    auto replay = runDifferential(prog, presets::packing(true));
    EXPECT_GT(replay.core->packingStats().replayTraps, 100u);
    EXPECT_GE(replay.core->stats().cycles,
              strict.core->stats().cycles);
}

TEST(Figure11Mechanism, PackingTracksTheBigMachineOnBursts)
{
    // On burst-drain code, packing should recover a meaningful part of
    // what the 8-issue/8-ALU machine gains over the baseline.
    const Program prog = buildProgram([](Assembler &as) {
        as.li(1, 0xace1);
        as.li(2, 1200);
        as.label("loop");
        as.srli(4, 1, 2);
        as.xor_(4, 4, 1);
        as.srli(5, 1, 3);
        as.xor_(4, 4, 5);
        as.andi(4, 4, 1);
        as.srli(1, 1, 1);
        as.slli(5, 4, 15);
        as.or_(1, 1, 5);
        for (unsigned k = 0; k < 16; ++k)
            as.addi(static_cast<RegIndex>(6 + (k % 8)), 4,
                    static_cast<i64>(k));
        as.beq(4, "skip");
        as.addi(14, 14, 3);
        as.label("skip");
        as.subi(2, 2, 1);
        as.bne(2, "loop");
        as.halt();
    });
    auto base = runDifferential(prog, presets::baseline());
    auto pack = runDifferential(prog, presets::packing(true));
    auto wide = runDifferential(prog, presets::issue8());
    const double gap = static_cast<double>(base.core->stats().cycles) -
                       static_cast<double>(wide.core->stats().cycles);
    const double closed =
        static_cast<double>(base.core->stats().cycles) -
        static_cast<double>(pack.core->stats().cycles);
    ASSERT_GT(gap, 0.0);
    EXPECT_GT(closed, 0.3 * gap);
}

} // namespace
} // namespace nwsim
