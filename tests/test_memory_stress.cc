/**
 * Memory-disambiguation stress: randomly generated programs with dense,
 * byte-granular overlapping loads and stores in a tiny address range,
 * checked differentially against the golden model. This hammers
 * store-to-load forwarding, partial overlaps, wrong-path loads, and
 * LSQ-full backpressure harder than real code ever would.
 */

#include "sim_test_util.hh"

#include "common/rng.hh"
#include "driver/presets.hh"

namespace nwsim
{
namespace
{

Program
memoryStorm(u64 seed, unsigned iters)
{
    SplitMix64 rng(seed);
    Assembler as;
    as.la(16, "blob");
    as.li(17, static_cast<i64>(iters));
    // Seed some registers with values of assorted widths.
    for (RegIndex r = 1; r <= 10; ++r)
        as.li(r, static_cast<i64>(rng.next() >> (rng.next() % 60)));

    as.label("outer");
    for (int i = 0; i < 40; ++i) {
        const auto reg = [&] {
            return static_cast<RegIndex>(1 + rng.below(10));
        };
        // All accesses land in a 64-byte window: constant collisions.
        const i64 off = static_cast<i64>(rng.below(56));
        switch (rng.below(10)) {
          case 0:
            as.stq(reg(), off & ~7, 16);
            break;
          case 1:
            as.stl(reg(), off & ~3, 16);
            break;
          case 2:
            as.stw(reg(), off & ~1, 16);
            break;
          case 3:
            as.stb(reg(), off, 16);
            break;
          case 4:
            as.ldq(reg(), off & ~7, 16);
            break;
          case 5:
            as.ldl(reg(), off & ~3, 16);
            break;
          case 6:
            as.ldwu(reg(), off & ~1, 16);
            break;
          case 7:
            as.ldbu(reg(), off, 16);
            break;
          case 8:
            as.add(reg(), reg(), reg());
            break;
          default: {
            // Occasional data-dependent branch over one op.
            const RegIndex c = reg();
            const std::string skip =
                "s" + std::to_string(rng.next());
            as.blt(c, skip);
            as.xor_(reg(), reg(), c);
            as.label(skip);
            break;
          }
        }
    }
    as.subi(17, 17, 1);
    as.bne(17, "outer");
    // Fold the window into a register so the differential check sees it.
    as.li(1, 0);
    for (int q = 0; q < 8; ++q) {
        as.ldq(2, q * 8, 16);
        as.add(1, 1, 2);
    }
    as.halt();
    as.dataLabel("blob");
    for (int i = 0; i < 8; ++i)
        as.dataQuad(rng.next());
    return as.assemble();
}

class MemoryStress : public ::testing::TestWithParam<int>
{
};

TEST_P(MemoryStress, BaselineExact)
{
    test::runDifferential(memoryStorm(7000 + GetParam(), 30),
                          presets::baseline());
}

TEST_P(MemoryStress, TinyLsqExact)
{
    CoreConfig cfg = presets::baseline();
    cfg.lsqSize = 3;
    cfg.ruuSize = 12;
    test::runDifferential(memoryStorm(8000 + GetParam(), 20), cfg);
}

TEST_P(MemoryStress, PackingReplayExact)
{
    test::runDifferential(memoryStorm(9000 + GetParam(), 30),
                          presets::packing(true));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryStress, ::testing::Range(0, 10));

TEST(MemoryStress, ForwardingActuallyHappens)
{
    auto run = test::runDifferential(memoryStorm(424242, 40),
                                     presets::baseline());
    EXPECT_GT(run.core->stats().loadsForwarded, 100u);
}

} // namespace
} // namespace nwsim
