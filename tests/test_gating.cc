/** Unit tests for the clock-gating power accounting (core/gating.hh). */

#include <gtest/gtest.h>

#include "core/gating.hh"

namespace nwsim
{
namespace
{

constexpr double kAdder64 = 210.0;
constexpr double kAdder16 = 210.0 / 4;
constexpr double kAdder33 = 210.0 * 33 / 64;
constexpr double kZd = 4.2;
constexpr double kMux = 3.2;

TEST(Gating, NarrowOpGatesTo16Bits)
{
    ClockGatingModel m;
    m.recordOp(DeviceClass::Adder, 17, 2, false, false, true);
    const GatingStats &s = m.stats();
    EXPECT_EQ(s.ops, 1u);
    EXPECT_EQ(s.gated16, 1u);
    EXPECT_DOUBLE_EQ(s.baselineMwSum, kAdder64);
    EXPECT_DOUBLE_EQ(s.gatedMwSum, kAdder16);
    EXPECT_DOUBLE_EQ(s.overheadMwSum, kZd + kMux);
    EXPECT_DOUBLE_EQ(s.saved16MwSum, kAdder64 - kAdder16);
    EXPECT_DOUBLE_EQ(s.saved33MwSum, 0.0);
}

TEST(Gating, AddressOpGatesTo33Bits)
{
    ClockGatingModel m;
    const u64 heap_ptr = (u64{1} << 32) + 0x100;
    m.recordOp(DeviceClass::Adder, heap_ptr, 8, false, false, true);
    const GatingStats &s = m.stats();
    EXPECT_EQ(s.gated33, 1u);
    EXPECT_DOUBLE_EQ(s.gatedMwSum, kAdder33);
    EXPECT_DOUBLE_EQ(s.saved33MwSum, kAdder64 - kAdder33);
}

TEST(Gating, WideOpPaysFullPower)
{
    ClockGatingModel m;
    m.recordOp(DeviceClass::Adder, u64{1} << 40, 8, false, false, true);
    const GatingStats &s = m.stats();
    EXPECT_EQ(s.gated16 + s.gated33, 0u);
    EXPECT_DOUBLE_EQ(s.gatedMwSum, kAdder64);
    // Zero-detect still runs (tags every produced result); no mux.
    EXPECT_DOUBLE_EQ(s.overheadMwSum, kZd);
}

TEST(Gating, BothOperandsMustBeNarrow)
{
    ClockGatingModel m;
    m.recordOp(DeviceClass::Adder, 5, u64{1} << 40, false, false, true);
    EXPECT_EQ(m.stats().gated16 + m.stats().gated33, 0u);
}

TEST(Gating, NegativeNarrowValuesGateViaOnesDetect)
{
    ClockGatingModel m;
    m.recordOp(DeviceClass::Adder, static_cast<u64>(-17),
               static_cast<u64>(-2), false, false, true);
    EXPECT_EQ(m.stats().gated16, 1u);
}

TEST(Gating, DisabledGate33FallsBackToFullWidth)
{
    GatingConfig cfg;
    cfg.gate33 = false;
    ClockGatingModel m(cfg);
    m.recordOp(DeviceClass::Adder, u64{1} << 32, 8, false, false, true);
    EXPECT_EQ(m.stats().gated33, 0u);
    EXPECT_DOUBLE_EQ(m.stats().gatedMwSum, kAdder64);
}

TEST(Gating, LoadSourcedOperandsTracked)
{
    ClockGatingModel m;
    m.recordOp(DeviceClass::Adder, 17, 2, true, false, true);
    m.recordOp(DeviceClass::Adder, 17, 2, false, false, true);
    EXPECT_EQ(m.stats().gatedLoadSourced, 1u);
    EXPECT_DOUBLE_EQ(m.stats().loadSourcedPercent(), 50.0);
}

TEST(Gating, NoZeroDetectOnLoadsBlocksGating)
{
    GatingConfig cfg;
    cfg.zeroDetectOnLoads = false;
    ClockGatingModel m(cfg);
    m.recordOp(DeviceClass::Adder, 17, 2, true, false, true);
    EXPECT_EQ(m.stats().gated16, 0u);
    EXPECT_EQ(m.stats().blockedByLoad, 1u);
    EXPECT_DOUBLE_EQ(m.stats().gatedMwSum, kAdder64);
    // Not load-sourced: still gates.
    m.recordOp(DeviceClass::Adder, 17, 2, false, false, true);
    EXPECT_EQ(m.stats().gated16, 1u);
}

TEST(Gating, DisabledModelChargesBaseline)
{
    GatingConfig cfg;
    cfg.enabled = false;
    ClockGatingModel m(cfg);
    m.recordOp(DeviceClass::Adder, 17, 2, false, false, true);
    EXPECT_DOUBLE_EQ(m.stats().gatedMwSum, kAdder64);
    EXPECT_DOUBLE_EQ(m.stats().overheadMwSum, 0.0);
    EXPECT_DOUBLE_EQ(m.stats().reductionPercent(), 0.0);
}

TEST(Gating, MultiplierSavesTenTimesTheAdder)
{
    ClockGatingModel m;
    m.recordOp(DeviceClass::Multiplier, 100, 200, false, false, true);
    EXPECT_DOUBLE_EQ(m.stats().saved16MwSum, (2100.0 - 2100.0 / 4));
}

TEST(Gating, NetAndReductionArithmetic)
{
    ClockGatingModel m;
    m.recordOp(DeviceClass::Adder, 1, 2, false, false, true);
    m.recordOp(DeviceClass::Adder, u64{1} << 32, 4, false, false, true);
    m.recordOp(DeviceClass::Adder, u64{1} << 50, 4, false, false, true);
    const GatingStats &s = m.stats();
    const double expect_net =
        s.saved16MwSum + s.saved33MwSum - s.overheadMwSum;
    EXPECT_DOUBLE_EQ(s.netSavedMwSum(), expect_net);
    EXPECT_DOUBLE_EQ(s.optimizedMwSum(), s.gatedMwSum + s.overheadMwSum);
    EXPECT_GT(s.reductionPercent(), 0.0);
    EXPECT_LT(s.reductionPercent(), 100.0);
    // Consistency: baseline == gated + all savings (device side).
    EXPECT_NEAR(s.baselineMwSum,
                s.gatedMwSum + s.saved16MwSum + s.saved33MwSum, 1e-9);
}

TEST(Gating, NopsCostNothing)
{
    ClockGatingModel m;
    m.recordOp(DeviceClass::None, 0, 0, false, false, false);
    EXPECT_EQ(m.stats().ops, 0u);
    EXPECT_DOUBLE_EQ(m.stats().baselineMwSum, 0.0);
}

TEST(Gating, ResetClearsEverything)
{
    ClockGatingModel m;
    m.recordOp(DeviceClass::Adder, 1, 2, false, false, true);
    m.reset();
    EXPECT_EQ(m.stats().ops, 0u);
    EXPECT_DOUBLE_EQ(m.stats().baselineMwSum, 0.0);
}

} // namespace
} // namespace nwsim
