/** Unit tests for the Table 4 device power model. */

#include <gtest/gtest.h>

#include "power/device_model.hh"

namespace nwsim
{
namespace
{

TEST(DeviceModel, Table4ValuesAt64Bits)
{
    DeviceModel m;
    EXPECT_DOUBLE_EQ(m.power(DeviceClass::Adder, 64), 210.0);
    EXPECT_DOUBLE_EQ(m.power(DeviceClass::Multiplier, 64), 2100.0);
    EXPECT_DOUBLE_EQ(m.power(DeviceClass::BitwiseLogic, 64), 11.7);
    EXPECT_DOUBLE_EQ(m.power(DeviceClass::Shifter, 64), 8.8);
    EXPECT_DOUBLE_EQ(m.zeroDetectPower(), 4.2);
    EXPECT_DOUBLE_EQ(m.muxPower(), 3.2);
}

TEST(DeviceModel, Table4ValuesAt32And48Bits)
{
    // The paper's 32/48-bit columns are linear in width (158 and 8.7 are
    // printed rounded; we allow 1 mW of rounding slack).
    DeviceModel m;
    EXPECT_DOUBLE_EQ(m.power(DeviceClass::Adder, 32), 105.0);
    EXPECT_NEAR(m.power(DeviceClass::Adder, 48), 158.0, 1.0);
    EXPECT_DOUBLE_EQ(m.power(DeviceClass::Multiplier, 32), 1050.0);
    EXPECT_NEAR(m.power(DeviceClass::Multiplier, 48), 1580.0, 5.0);
    EXPECT_NEAR(m.power(DeviceClass::BitwiseLogic, 32), 5.8, 0.1);
    EXPECT_NEAR(m.power(DeviceClass::BitwiseLogic, 48), 8.7, 0.1);
    EXPECT_NEAR(m.power(DeviceClass::Shifter, 32), 4.4, 0.1);
    EXPECT_NEAR(m.power(DeviceClass::Shifter, 48), 6.6, 0.1);
}

TEST(DeviceModel, GatedWidthsUsedByTheOptimization)
{
    DeviceModel m;
    // 16-bit gated adder: a quarter of the 64-bit power.
    EXPECT_DOUBLE_EQ(m.power(DeviceClass::Adder, 16), 210.0 / 4);
    // 33-bit gating leaves slightly more than half.
    EXPECT_NEAR(m.power(DeviceClass::Adder, 33), 210.0 * 33 / 64, 1e-9);
    EXPECT_DOUBLE_EQ(m.power(DeviceClass::None, 64), 0.0);
    EXPECT_DOUBLE_EQ(m.power(DeviceClass::Adder, 0), 0.0);
}

TEST(DeviceModel, MonotoneInWidth)
{
    DeviceModel m;
    for (unsigned w = 1; w <= 64; ++w) {
        EXPECT_LE(m.power(DeviceClass::Adder, w - 1),
                  m.power(DeviceClass::Adder, w));
        EXPECT_LE(m.power(DeviceClass::Multiplier, w - 1),
                  m.power(DeviceClass::Multiplier, w));
    }
}

TEST(DeviceModel, CustomConfigScales)
{
    DeviceModelConfig cfg;
    cfg.adder64 = 400.0;
    cfg.zeroDetect = 1.0;
    DeviceModel m(cfg);
    EXPECT_DOUBLE_EQ(m.power(DeviceClass::Adder, 32), 200.0);
    EXPECT_DOUBLE_EQ(m.zeroDetectPower(), 1.0);
    // Ratios between devices dominate the paper's conclusions: the
    // multiplier/adder ratio is 10x in Table 4.
    DeviceModel def;
    EXPECT_DOUBLE_EQ(def.fullPower(DeviceClass::Multiplier) /
                         def.fullPower(DeviceClass::Adder),
                     10.0);
}

} // namespace
} // namespace nwsim
