/**
 * Checkpoint/restore (docs/CHECKPOINT.md): the NWCK file format's
 * durability and fuzz resistance, checkpointed detailed and sampled
 * runs that resume bit-identically after an interrupt, fork-isolated
 * jobs SIGKILLed mid-run and resumed from their last durable
 * checkpoint, graceful worker shutdown over the remote executor, and
 * sharded sampled campaigns whose merged statistics are invariant in
 * the shard count.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include <csignal>
#include <sys/wait.h>

#include "ckpt/checkpoint.hh"
#include "ckpt/run.hh"
#include "common/error.hh"
#include "exp/campaign.hh"
#include "exp/configs.hh"
#include "exp/journal.hh"
#include "exp/remote.hh"
#include "exp/shard.hh"
#include "sample/controller.hh"
#include "stat_diff.hh"
#include "workloads/workload.hh"

namespace nwsim
{
namespace
{

/** Fresh scratch directory under the test's cwd. */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = "ckpt_test_" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** Clear interrupt flag + test-hook env between drills. */
void
resetCkptTestState()
{
    ckpt::clearInterrupt();
    ::unsetenv("NWSIM_CKPT_TEST_STOP_AT");
    ::unsetenv("NWSIM_CKPT_TEST_KILL_AT");
}

RunOptions
detailedOpts(u64 every = 3000)
{
    RunOptions opts;
    opts.warmupInsts = 2000;
    opts.measureInsts = 10000;
    opts.ckptEveryInsts = every;
    return opts;
}

RunOptions
sampledOpts(u64 every = 30000)
{
    RunOptions opts;
    opts.warmupInsts = 50000;
    opts.measureInsts = 150000;
    opts.sample = exp::sampleBySpec("baseline+sample=40000:1000:4000");
    opts.ckptEveryInsts = every;
    return opts;
}

RunResult
runCkpt(const RunOptions &opts, const std::string &path,
        const std::string &workload = "perl")
{
    ckpt::CkptRunPolicy policy;
    policy.path = path;
    policy.workload = workload;
    policy.configSpec = "baseline";
    policy.everyInsts = opts.ckptEveryInsts;
    return ckpt::runCheckpointedProgram(
        workloadByName(workload).program(), exp::configBySpec("baseline"),
        opts, workload, "baseline", policy);
}

// ---- NWCK file format ----------------------------------------------------

TEST(CkptFile, RoundTripAndProbe)
{
    const std::string dir = scratchDir("roundtrip");
    const std::string path = dir + "/a.nwck";

    ckpt::CheckpointMeta meta;
    meta.workload = "perl";
    meta.configSpec = "baseline+ckpt=5000";
    meta.kind = ckpt::CkptKind::Full;
    meta.position = 123456;
    const std::string payload("\x00\x01machine-state\xff\x7f", 18);

    std::string error;
    ASSERT_TRUE(ckpt::writeCheckpointFile(path, meta, payload, error))
        << error;
    EXPECT_TRUE(ckpt::checkpointExists(path));
    // The tmp staging file must not survive a successful rename.
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

    ckpt::CheckpointMeta back;
    std::string got;
    ASSERT_EQ(ckpt::readCheckpointFile(path, back, got),
              ckpt::WireError::None);
    EXPECT_EQ(back.workload, meta.workload);
    EXPECT_EQ(back.configSpec, meta.configSpec);
    EXPECT_EQ(back.kind, meta.kind);
    EXPECT_EQ(back.position, meta.position);
    EXPECT_EQ(got, payload);
    EXPECT_TRUE(back.matches("perl", "baseline+ckpt=5000"));
    EXPECT_FALSE(back.matches("perl", "baseline"));

    ckpt::CheckpointMeta probed;
    ASSERT_EQ(ckpt::probeCheckpoint(path, probed),
              ckpt::WireError::None);
    EXPECT_EQ(probed.position, meta.position);

    // Overwrite is atomic: the new contents fully replace the old.
    meta.position = 999;
    ASSERT_TRUE(ckpt::writeCheckpointFile(path, meta, "v2", error));
    ASSERT_EQ(ckpt::readCheckpointFile(path, back, got),
              ckpt::WireError::None);
    EXPECT_EQ(back.position, 999u);
    EXPECT_EQ(got, "v2");

    std::filesystem::remove_all(dir);
}

TEST(CkptFile, MissingAndForeignFilesAreClassified)
{
    const std::string dir = scratchDir("classify");
    ckpt::CheckpointMeta meta;
    std::string payload;

    EXPECT_FALSE(ckpt::checkpointExists(dir + "/absent.nwck"));
    EXPECT_EQ(ckpt::readCheckpointFile(dir + "/absent.nwck", meta,
                                       payload),
              ckpt::WireError::Truncated);

    // A non-checkpoint file must be BadMagic, not a misparse.
    const std::string junk = dir + "/junk.nwck";
    {
        std::FILE *f = std::fopen(junk.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("HTTP/1.1 200 OK\r\n\r\nhello", f);
        std::fclose(f);
    }
    EXPECT_EQ(ckpt::readCheckpointFile(junk, meta, payload),
              ckpt::WireError::BadMagic);

    std::filesystem::remove_all(dir);
}

TEST(CkptFile, ByteFlipAndTruncationFuzzAlwaysClassified)
{
    const std::string dir = scratchDir("fuzz");
    const std::string path = dir + "/seed.nwck";

    ckpt::CheckpointMeta meta;
    meta.workload = "perl";
    meta.configSpec = "baseline";
    meta.position = 42;
    std::string payload;
    for (int i = 0; i < 256; ++i)
        payload.push_back(static_cast<char>(i));
    std::string error;
    ASSERT_TRUE(ckpt::writeCheckpointFile(path, meta, payload, error));

    std::string bytes;
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        char buf[4096];
        size_t n = 0;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            bytes.append(buf, n);
        std::fclose(f);
    }

    const std::string mutated = dir + "/mutated.nwck";
    std::mt19937 rng(1999); // fixed seed: deterministic corpus
    size_t rejected = 0;
    for (int iter = 0; iter < 500; ++iter) {
        std::string blob = bytes;
        blob[rng() % blob.size()] ^=
            static_cast<char>(1u << (rng() % 8));
        if (iter % 3 == 0)
            blob.resize(rng() % (blob.size() + 1));
        {
            std::FILE *f = std::fopen(mutated.c_str(), "wb");
            ASSERT_NE(f, nullptr);
            std::fwrite(blob.data(), 1, blob.size(), f);
            std::fclose(f);
        }
        // Every mutation must classify or parse — never crash, hang,
        // or return None with altered contents (the checksum covers
        // every payload byte).
        ckpt::CheckpointMeta m;
        std::string p;
        const ckpt::WireError err =
            ckpt::readCheckpointFile(mutated, m, p);
        if (err != ckpt::WireError::None) {
            ++rejected;
        } else {
            EXPECT_EQ(p, payload);
            EXPECT_EQ(m.position, meta.position);
        }
    }
    // A single byte flip can only go unnoticed by colliding FNV-1a;
    // with this corpus every mutation is caught.
    EXPECT_GT(rejected, 450u);

    std::filesystem::remove_all(dir);
}

// ---- checkpointed detailed runs ------------------------------------------

TEST(DetailedCkpt, StatsIndependentOfCheckpointPath)
{
    resetCkptTestState();
    const std::string dir = scratchDir("pathless");
    const RunResult without = runCkpt(detailedOpts(), "");
    const RunResult with = runCkpt(detailedOpts(), dir + "/p.nwck");
    EXPECT_TRUE(test::statIdentical(without, with));
    // Deleted after a successful run.
    EXPECT_FALSE(ckpt::checkpointExists(dir + "/p.nwck"));
    std::filesystem::remove_all(dir);
}

TEST(DetailedCkpt, InterruptThenResumeIsBitIdentical)
{
    resetCkptTestState();
    const std::string dir = scratchDir("detailed_resume");
    const std::string path = dir + "/job.nwck";

    const RunResult reference = runCkpt(detailedOpts(), "");

    ::setenv("NWSIM_CKPT_TEST_STOP_AT", "6000", 1);
    EXPECT_THROW(runCkpt(detailedOpts(), path), InterruptedError);
    resetCkptTestState();
    ASSERT_TRUE(ckpt::checkpointExists(path));

    ckpt::CheckpointMeta meta;
    ASSERT_EQ(ckpt::probeCheckpoint(path, meta), ckpt::WireError::None);
    EXPECT_GE(meta.position, 6000u);

    const RunResult resumed = runCkpt(detailedOpts(), path);
    EXPECT_TRUE(test::statIdentical(reference, resumed));
    EXPECT_FALSE(ckpt::checkpointExists(path));
    std::filesystem::remove_all(dir);
}

TEST(DetailedCkpt, MismatchedCheckpointIsRefusedAndRunStartsFresh)
{
    resetCkptTestState();
    const std::string dir = scratchDir("mismatch");
    const std::string path = dir + "/job.nwck";

    // Interrupt a gsm-decode run, then hand its checkpoint to a perl
    // job: the meta binding must refuse it and run fresh (identical to
    // a run with no checkpoint at all).
    ::setenv("NWSIM_CKPT_TEST_STOP_AT", "6000", 1);
    EXPECT_THROW(runCkpt(detailedOpts(), path, "gsm-decode"),
                 InterruptedError);
    resetCkptTestState();
    ASSERT_TRUE(ckpt::checkpointExists(path));

    const RunResult reference = runCkpt(detailedOpts(), "");
    const RunResult fresh = runCkpt(detailedOpts(), path);
    EXPECT_TRUE(test::statIdentical(reference, fresh));
    std::filesystem::remove_all(dir);
}

// ---- checkpointed sampled runs -------------------------------------------

TEST(SampledCkpt, MatchesPlainSampledRun)
{
    resetCkptTestState();
    const RunOptions opts = sampledOpts();
    const RunResult plain = sample::runSampledProgram(
        workloadByName("perl").program(), exp::configBySpec("baseline"),
        opts, "perl", "baseline");
    const RunResult ckpted = runCkpt(opts, "");
    EXPECT_TRUE(test::statIdentical(plain, ckpted));
}

TEST(SampledCkpt, InterruptThenResumeIsBitIdentical)
{
    resetCkptTestState();
    const std::string dir = scratchDir("sampled_resume");
    const std::string path = dir + "/job.nwck";

    const RunResult reference = runCkpt(sampledOpts(), "");

    ::setenv("NWSIM_CKPT_TEST_STOP_AT", "90000", 1);
    EXPECT_THROW(runCkpt(sampledOpts(), path), InterruptedError);
    resetCkptTestState();
    ASSERT_TRUE(ckpt::checkpointExists(path));

    const RunResult resumed = runCkpt(sampledOpts(), path);
    EXPECT_TRUE(test::statIdentical(reference, resumed));
    EXPECT_FALSE(ckpt::checkpointExists(path));
    std::filesystem::remove_all(dir);
}

// ---- sharded sampled campaigns -------------------------------------------

/** Thread-executor sweep of @p jobs merged back to per-parent results. */
std::vector<exp::JobOutcome>
runSharded(const std::vector<std::string> &workloads, u64 shards)
{
    exp::Campaign grid = exp::Campaign::grid(
        workloads, {"baseline+sample=40000:1000:4000"}, sampledOpts(0));
    exp::Campaign c;
    for (exp::SimJob &job : exp::planShardJobs(grid.jobs(), shards))
        c.add(std::move(job));
    return exp::mergeShardOutcomes(c.run({}).outcomes());
}

TEST(Shard, MergedStatsInvariantInShardCount)
{
    resetCkptTestState();
    const std::vector<std::string> wl = {"perl", "gsm-decode"};
    const std::vector<exp::JobOutcome> one = runSharded(wl, 1);
    const std::vector<exp::JobOutcome> three = runSharded(wl, 3);
    const std::vector<exp::JobOutcome> five = runSharded(wl, 5);

    ASSERT_EQ(one.size(), wl.size());
    ASSERT_EQ(three.size(), wl.size());
    ASSERT_EQ(five.size(), wl.size());
    for (size_t i = 0; i < wl.size(); ++i) {
        ASSERT_TRUE(one[i].ok) << one[i].error;
        ASSERT_TRUE(three[i].ok) << three[i].error;
        // The shard suffix is stripped back off by the merge.
        EXPECT_EQ(one[i].label(), three[i].label());
        EXPECT_EQ(one[i].configSpec.find("#shard"), std::string::npos);
        EXPECT_TRUE(
            test::statIdentical(one[i].result, three[i].result))
            << one[i].label();
        EXPECT_TRUE(test::statIdentical(one[i].result, five[i].result))
            << one[i].label();
    }
}

TEST(Shard, FailedShardFailsParentWithRangeNamed)
{
    std::vector<exp::JobOutcome> outcomes(2);
    outcomes[0].workload = "perl";
    outcomes[0].configSpec = "spec#shard0-2";
    outcomes[0].ok = true;
    outcomes[0].status = exp::JobStatus::Ok;
    outcomes[1].workload = "perl";
    outcomes[1].configSpec = "spec#shard2-4";
    outcomes[1].ok = false;
    outcomes[1].status = exp::JobStatus::Crashed;
    outcomes[1].termSignal = SIGSEGV;
    outcomes[1].error = "isolated job killed by SIGSEGV";

    const std::vector<exp::JobOutcome> merged =
        exp::mergeShardOutcomes(std::move(outcomes));
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_FALSE(merged[0].ok);
    EXPECT_EQ(merged[0].status, exp::JobStatus::Crashed);
    EXPECT_EQ(merged[0].configSpec, "spec");
    EXPECT_NE(merged[0].error.find("#shard2-4"), std::string::npos);
}

// ---- campaign integration ------------------------------------------------

exp::Campaign
ckptGrid()
{
    return exp::Campaign::grid({"perl"}, {"baseline"}, detailedOpts());
}

TEST(Campaign, InterruptedJobSkipsJournalAndResumesFromCheckpoint)
{
    resetCkptTestState();
    const std::string dir = scratchDir("campaign_resume");
    const std::string journal = dir + "/sweep.nwj";

    const exp::ResultSet reference = ckptGrid().run({});
    ASSERT_TRUE(reference.allOk());

    exp::CampaignOptions copts;
    copts.journal = journal;
    copts.ckptDir = dir;
    copts.jobs = 1;

    ::setenv("NWSIM_CKPT_TEST_STOP_AT", "6000", 1);
    const exp::ResultSet interrupted = ckptGrid().run(copts);
    resetCkptTestState();

    ASSERT_EQ(interrupted.size(), 1u);
    const exp::JobOutcome &stopped = interrupted.outcomes()[0];
    EXPECT_EQ(stopped.status, exp::JobStatus::Interrupted);
    EXPECT_FALSE(stopped.ok);
    EXPECT_FALSE(stopped.ckptPath.empty());
    EXPECT_GE(stopped.ckptPosition, 6000u);
    ASSERT_TRUE(ckpt::checkpointExists(stopped.ckptPath));

    // Interrupted is not terminal: the journal must not hold a record
    // for the job, so a resume re-runs it (from the checkpoint).
    EXPECT_TRUE(exp::CampaignJournal::load(journal).empty());

    copts.resume = true;
    const exp::ResultSet resumed = ckptGrid().run(copts);
    ASSERT_TRUE(resumed.allOk());
    EXPECT_TRUE(test::statIdentical(reference.outcomes()[0].result,
                                    resumed.outcomes()[0].result));
    EXPECT_EQ(exp::CampaignJournal::load(journal).size(), 1u);

    std::filesystem::remove_all(dir);
}

TEST(Campaign, ResumeRejectsJournalFromDifferentSweep)
{
    resetCkptTestState();
    const std::string dir = scratchDir("foreign_journal");
    const std::string journal = dir + "/other.nwj";

    // Journal a different grid, then resume this one against it: the
    // mismatch must fail fast, not silently mix two campaigns.
    exp::CampaignOptions other;
    other.journal = journal;
    ASSERT_TRUE(exp::Campaign::grid({"gsm-decode"}, {"baseline"},
                                    detailedOpts(0))
                    .run(other)
                    .allOk());

    exp::CampaignOptions copts;
    copts.journal = journal;
    copts.resume = true;
    EXPECT_THROW(ckptGrid().run(copts), BadInputError);

    std::filesystem::remove_all(dir);
}

// ---- fork-isolated kill/resume -------------------------------------------

TEST(ForkExec, SigkilledJobLeavesCheckpointAndResumes)
{
    resetCkptTestState();
    const std::string dir = scratchDir("fork_kill");

    const exp::ResultSet reference = ckptGrid().run({});

    exp::CampaignOptions copts;
    copts.isolate = true;
    copts.ckptDir = dir;
    copts.maxAttempts = 1;

    // The child SIGKILLs itself right after the 6000-instruction
    // checkpoint lands: no handler runs, no outcome is reported — the
    // parent must classify the death AND recover the checkpoint
    // provenance by probing the directory.
    ::setenv("NWSIM_CKPT_TEST_KILL_AT", "6000", 1);
    const exp::ResultSet killed = ckptGrid().run(copts);
    resetCkptTestState();

    ASSERT_EQ(killed.size(), 1u);
    const exp::JobOutcome &dead = killed.outcomes()[0];
    EXPECT_EQ(dead.status, exp::JobStatus::Crashed);
    EXPECT_EQ(dead.termSignal, SIGKILL);
    ASSERT_FALSE(dead.ckptPath.empty())
        << "parent did not probe the checkpoint of a silent death";
    EXPECT_GE(dead.ckptPosition, 6000u);
    ASSERT_TRUE(ckpt::checkpointExists(dead.ckptPath));

    // Re-run: the job resumes from the checkpoint and finishes with
    // statistics bit-identical to the uninterrupted reference.
    const exp::ResultSet resumed = ckptGrid().run(copts);
    ASSERT_TRUE(resumed.allOk());
    EXPECT_TRUE(test::statIdentical(reference.outcomes()[0].result,
                                    resumed.outcomes()[0].result));
    EXPECT_FALSE(ckpt::checkpointExists(dead.ckptPath));

    std::filesystem::remove_all(dir);
}

// ---- remote workers: interrupt, re-enqueue, graceful shutdown ------------

TEST(Remote, InterruptedJobIsReenqueuedAndResumedOnAWorker)
{
    resetCkptTestState();
    const std::string dir = scratchDir("remote_resume");

    const exp::Campaign campaign = exp::Campaign::grid(
        {"perl", "gsm-decode"}, {"baseline"}, detailedOpts());
    exp::CampaignOptions tc;
    const exp::ResultSet reference = campaign.run(tc);
    ASSERT_TRUE(reference.allOk());

    // Every worker child inherits the STOP_AT hook: each job's first
    // attempt checkpoints at 6000 and reports Interrupted; the driver
    // re-enqueues it; the retry starts from the checkpoint (already
    // past the threshold, so the hook stays quiet) and completes.
    ::setenv("NWSIM_CKPT_TEST_STOP_AT", "6000", 1);
    exp::LocalWorkerFleet fleet(2, 1, dir);
    exp::CampaignOptions rc;
    rc.workerHosts = fleet.hosts();
    rc.remoteWindow = 1;
    const exp::ResultSet remote = campaign.run(rc);
    resetCkptTestState();

    ASSERT_TRUE(remote.allOk());
    for (size_t i = 0; i < reference.size(); ++i) {
        EXPECT_TRUE(
            test::statIdentical(reference.outcomes()[i].result,
                                remote.outcomes()[i].result))
            << reference.outcomes()[i].label();
    }
    std::filesystem::remove_all(dir);
}

TEST(Remote, SigtermedWorkerShutsDownGracefullyAndSweepCompletes)
{
    resetCkptTestState();
    const std::string dir = scratchDir("remote_term");

    const exp::Campaign campaign = exp::Campaign::grid(
        {"perl", "gsm-decode", "compress"}, {"baseline", "packing"},
        detailedOpts());
    const std::vector<exp::SimJob> &jobs = campaign.jobs();
    std::vector<size_t> indices(jobs.size());
    for (size_t i = 0; i < indices.size(); ++i)
        indices[i] = i;

    const exp::ResultSet reference = campaign.run({});
    ASSERT_TRUE(reference.allOk());

    auto fleet =
        std::make_unique<exp::LocalWorkerFleet>(2, 1, dir);
    exp::CampaignOptions rc;
    rc.workerHosts = fleet->hosts();
    rc.remoteWindow = 1;
    rc.workerLossSeconds = 5.0;
    rc.reconnectAttempts = 1;

    // SIGTERM worker 0 as soon as the first outcome lands: it must
    // checkpoint anything in flight, flush outcomes, and exit 0 on its
    // own — and the sweep must still complete via the survivor.
    std::vector<exp::JobOutcome> outcomes(jobs.size());
    size_t landed = 0;
    exp::RemoteExecutor ex;
    ex.execute(jobs, indices, rc, outcomes, [&](size_t) {
        if (++landed == 1)
            fleet->term(0);
    });

    ASSERT_EQ(landed, jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(outcomes[i].ok)
            << outcomes[i].label() << ": " << outcomes[i].error;
        EXPECT_TRUE(test::statIdentical(
            reference.outcomes()[i].result, outcomes[i].result))
            << outcomes[i].label();
    }

    // Graceful means exit code 0 — not a signal death.
    const int status = fleet->waitExit(0);
    ASSERT_TRUE(WIFEXITED(status))
        << "worker 0 died on a signal instead of exiting";
    EXPECT_EQ(WEXITSTATUS(status), 0);

    std::filesystem::remove_all(dir);
}

// ---- journal format ------------------------------------------------------

TEST(Journal, CkptTokenRoundTripsAndOldFormatIsSkipped)
{
    exp::JobOutcome o;
    o.workload = "perl";
    o.configSpec = "baseline+ckpt=5000";
    o.ok = false;
    o.status = exp::JobStatus::Crashed;
    o.termSignal = SIGKILL;
    o.errorKind = exp::FailKind::Internal;
    o.ckptPath = "ckpts/perl-baseline.nwck";
    o.ckptPosition = 123000;

    const std::string line = exp::CampaignJournal::formatRecord(o);
    EXPECT_EQ(line.rfind("nwj2 ", 0), 0u);
    EXPECT_NE(line.find(" 123000 "), std::string::npos);

    exp::JobOutcome back;
    ASSERT_TRUE(exp::CampaignJournal::parseRecord(line, back));
    EXPECT_EQ(back.ckptPath, o.ckptPath);
    EXPECT_EQ(back.ckptPosition, o.ckptPosition);

    // Tampering with the ckpt token must be caught even though the
    // token itself is outside the hex blob (it is re-derived and
    // cross-checked against the payload).
    std::string tampered = line;
    tampered.replace(tampered.find(" 123000 "), 8, " 123001 ");
    EXPECT_FALSE(exp::CampaignJournal::parseRecord(tampered, back));

    // Pre-checkpoint journals (nwj1) are skipped, not misparsed: the
    // affected jobs simply re-run.
    const std::string dir = scratchDir("journal_v1");
    const std::string path = dir + "/old.nwj";
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("nwj1 perl baseline ok 0011 deadbeef\n", f);
        std::fputs((line + "\n").c_str(), f);
        std::fclose(f);
    }
    const std::vector<exp::JobOutcome> loaded =
        exp::CampaignJournal::load(path);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded[0].ckptPosition, 123000u);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace nwsim
