/** Unit tests for the programmatic and textual assemblers. */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "asm/textasm.hh"
#include "common/error.hh"
#include "common/rng.hh"
#include "func/func_sim.hh"
#include "mem/sparse_memory.hh"

namespace nwsim
{
namespace
{

/** Assemble with `build`, run to halt, return final r1. */
u64
runReturningR1(const std::function<void(Assembler &)> &build,
               u64 max_steps = 100000)
{
    Assembler as;
    build(as);
    const Program prog = as.assemble();
    SparseMemory mem;
    prog.load(mem);
    FuncSim sim(mem, prog.entry);
    sim.run(max_steps);
    EXPECT_TRUE(sim.halted());
    return sim.reg(1);
}

TEST(Assembler, LiExactForManyConstants)
{
    const i64 values[] = {
        0,     1,      -1,     42,        -42,
        32767, -32768, 32768,  -32769,    65535,
        65536, 1 << 20, -(1 << 20),       0x7fffffff,
        static_cast<i64>(0x80000000ULL),  -0x7fffffffLL - 1,
        0x123456789LL, static_cast<i64>(0xdeadbeefcafef00dULL),
        static_cast<i64>(0x8000000000000000ULL),
        0x7fffffffffffffffLL,
    };
    for (const i64 v : values) {
        const u64 got = runReturningR1([&](Assembler &as) {
            as.li(1, v);
            as.halt();
        });
        EXPECT_EQ(got, static_cast<u64>(v)) << "li " << v;
    }
}

TEST(Assembler, LiRandomConstants)
{
    SplitMix64 rng(99);
    for (int i = 0; i < 200; ++i) {
        const i64 v = static_cast<i64>(rng.next());
        const u64 got = runReturningR1([&](Assembler &as) {
            as.li(1, v);
            as.halt();
        });
        EXPECT_EQ(got, static_cast<u64>(v));
    }
}

TEST(Assembler, LaResolvesDataAndCodeSymbols)
{
    Assembler as;
    as.la(1, "blob");           // forward data reference
    as.la(2, "here");           // forward code reference
    as.label("here");
    as.halt();
    as.dataZeros(24);
    const Addr blob = as.dataLabel("blob");
    as.dataQuad(7);
    const Program prog = as.assemble();

    SparseMemory mem;
    prog.load(mem);
    FuncSim sim(mem, prog.entry);
    sim.run(1000);
    EXPECT_EQ(sim.reg(1), blob);
    EXPECT_EQ(sim.reg(2), prog.symbol("here"));
    EXPECT_EQ(blob, layout::dataBase + 24);
}

TEST(Assembler, BackwardAndForwardBranches)
{
    // Count 0..9 with a backward branch, then skip over a trap with a
    // forward branch.
    const u64 got = runReturningR1([](Assembler &as) {
        as.li(1, 0);
        as.li(2, 10);
        as.label("loop");
        as.addi(1, 1, 1);
        as.sub(3, 1, 2);
        as.bne(3, "loop");
        as.br("past");
        as.li(1, 999);          // must be skipped
        as.label("past");
        as.halt();
    });
    EXPECT_EQ(got, 10u);
}

TEST(Assembler, CallAndReturn)
{
    const u64 got = runReturningR1([](Assembler &as) {
        as.li(1, 5);
        as.call("double_it");
        as.call("double_it");
        as.halt();
        as.label("double_it");
        as.add(1, 1, 1);
        as.ret();
    });
    EXPECT_EQ(got, 20u);
}

TEST(Assembler, StoreLoadRoundTrip)
{
    const u64 got = runReturningR1([](Assembler &as) {
        as.la(4, "buf");
        as.li(1, 0x1122334455667788LL);
        as.stq(1, 0, 4);
        as.ldwu(2, 2, 4);       // bytes 2..3 = 0x3344 -> little endian
        as.ldbu(3, 7, 4);       // top byte = 0x11
        as.slli(3, 3, 17);
        as.add(1, 2, 3);
        as.halt();
        as.dataLabel("buf");
        as.dataZeros(16);
    });
    // ldwu at offset 2 of little-endian 0x1122334455667788 = 0x5566;
    // byte at offset 7 = 0x11, shifted left 17.
    EXPECT_EQ(got, 0x5566u + (0x11ull << 17));
}

TEST(Assembler, DuplicateLabelThrows)
{
    Assembler as;
    as.label("x");
    try {
        as.label("x");
        FAIL() << "expected BadInputError";
    } catch (const BadInputError &e) {
        EXPECT_NE(std::string(e.what()).find("duplicate label"),
                  std::string::npos);
    }
}

TEST(Assembler, UndefinedLabelThrows)
{
    Assembler as;
    as.br("nowhere");
    try {
        as.assemble();
        FAIL() << "expected BadInputError";
    } catch (const BadInputError &e) {
        EXPECT_NE(std::string(e.what()).find("undefined label"),
                  std::string::npos);
    }
}

TEST(TextAsm, FullProgram)
{
    const char *src = R"(
        ; scrabble of syntax forms
        start:
            li   r1, 0
            li   r2, 5
            la   r4, table
        loop:
            ldq  r3, 0(r4)      ; load table entry
            add  r1, r1, r3
            addi r4, r4, 8
            subi r2, r2, 1
            bne  r2, loop
            call finish
            halt
        finish:
            addi r1, r1, 100
            ret
        .data
        table: .quad 1, 2, 3, 4, 5
    )";
    const Program prog = assembleText(src);
    SparseMemory mem;
    prog.load(mem);
    FuncSim sim(mem, prog.entry);
    sim.run(1000);
    EXPECT_TRUE(sim.halted());
    EXPECT_EQ(sim.reg(1), 115u);
}

TEST(TextAsm, DataDirectives)
{
    const char *src = R"(
        la r1, a
        ldbu r2, 0(r1)
        ldwu r3, 2(r1)
        ldl  r4, 4(r1)
        ldq  r5, 8(r1)
        ldq  r6, 16(r1)
        halt
        .data
        a: .byte 0xab, 0
           .word 0x1234
           .long 99
           .quad 77
           .quad a
    )";
    const Program prog = assembleText(src);
    SparseMemory mem;
    prog.load(mem);
    FuncSim sim(mem, prog.entry);
    sim.run(100);
    EXPECT_EQ(sim.reg(2), 0xabu);
    EXPECT_EQ(sim.reg(3), 0x1234u);
    EXPECT_EQ(sim.reg(4), 99u);
    EXPECT_EQ(sim.reg(5), 77u);
    EXPECT_EQ(sim.reg(6), prog.symbol("a"));
}

TEST(Program, SymbolLookupAndImageSize)
{
    Assembler as;
    as.label("entry");
    as.nop();
    as.halt();
    as.dataLabel("d");
    as.dataQuad(1);
    const Program prog = as.assemble();
    EXPECT_EQ(prog.symbol("entry"), layout::textBase);
    EXPECT_EQ(prog.symbol("d"), layout::dataBase);
    EXPECT_EQ(prog.imageBytes(), 8u + 8u);
    EXPECT_EQ(prog.textEnd(), layout::textBase + 8);
}

} // namespace
} // namespace nwsim
