/**
 * Experiment-campaign engine: deterministic fan-out (identical ResultSet
 * contents for any worker count), fault isolation (a throwing job fails
 * alone), config-spec parsing, and the JSON/CSV sinks.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "exp/campaign.hh"
#include "exp/configs.hh"
#include "exp/job_pool.hh"
#include "exp/json.hh"

namespace nwsim
{
namespace
{

RunOptions
tinyWindow()
{
    RunOptions opts;
    opts.warmupInsts = 2000;
    opts.measureInsts = 8000;
    return opts;
}

exp::ResultSet
runGrid(unsigned jobs)
{
    const exp::Campaign c = exp::Campaign::grid(
        {"perl", "gsm-decode"}, {"baseline", "packing-replay"},
        tinyWindow());
    exp::CampaignOptions copts;
    copts.jobs = jobs;
    return c.run(copts);
}

TEST(Campaign, GridBuildsWorkloadMajorOrder)
{
    const exp::Campaign c = exp::Campaign::grid(
        {"perl", "go"}, {"baseline", "packing"}, tinyWindow());
    ASSERT_EQ(c.jobs().size(), 4u);
    EXPECT_EQ(c.jobs()[0].label(), "perl/baseline");
    EXPECT_EQ(c.jobs()[1].label(), "go/baseline");
    EXPECT_EQ(c.jobs()[2].label(), "perl/packing");
    EXPECT_EQ(c.jobs()[3].label(), "go/packing");
}

TEST(Campaign, ResultsIdenticalAcrossThreadCounts)
{
    const exp::ResultSet serial = runGrid(1);
    const exp::ResultSet parallel = runGrid(4);

    ASSERT_EQ(serial.size(), 4u);
    ASSERT_EQ(parallel.size(), serial.size());
    EXPECT_EQ(serial.failedCount(), 0u);
    EXPECT_EQ(parallel.failedCount(), 0u);
    EXPECT_EQ(serial.workersUsed(), 1u);
    EXPECT_EQ(parallel.workersUsed(), 4u);

    for (size_t i = 0; i < serial.size(); ++i) {
        const exp::JobOutcome &a = serial.outcomes()[i];
        const exp::JobOutcome &b = parallel.outcomes()[i];
        // Same job in the same slot...
        ASSERT_EQ(a.label(), b.label());
        // ...with bit-identical statistics (only wall-clock may differ).
        EXPECT_EQ(a.result.core.cycles, b.result.core.cycles) << a.label();
        EXPECT_EQ(a.result.core.committed, b.result.core.committed);
        EXPECT_EQ(a.result.core.issued, b.result.core.issued);
        EXPECT_EQ(a.result.core.squashed, b.result.core.squashed);
        EXPECT_EQ(a.result.warmupCommitted, b.result.warmupCommitted);
        EXPECT_EQ(a.result.measuredCommitted, b.result.measuredCommitted);
        EXPECT_EQ(a.result.packing.packedGroups,
                  b.result.packing.packedGroups);
        EXPECT_EQ(a.result.packing.packedInsts,
                  b.result.packing.packedInsts);
        EXPECT_EQ(a.result.packing.replayTraps,
                  b.result.packing.replayTraps);
        EXPECT_EQ(a.result.gating.gated16, b.result.gating.gated16);
        EXPECT_EQ(a.result.gating.gated33, b.result.gating.gated33);
        EXPECT_DOUBLE_EQ(a.result.gating.baselineMwSum,
                         b.result.gating.baselineMwSum);
        EXPECT_DOUBLE_EQ(a.result.gating.gatedMwSum,
                         b.result.gating.gatedMwSum);
        EXPECT_EQ(a.result.profiler.totalOps(),
                  b.result.profiler.totalOps());
        EXPECT_DOUBLE_EQ(a.result.profiler.cumulativePercent(16),
                         b.result.profiler.cumulativePercent(16));
        EXPECT_DOUBLE_EQ(a.result.l1dMissRate, b.result.l1dMissRate);
        EXPECT_DOUBLE_EQ(a.result.l1iMissRate, b.result.l1iMissRate);
    }
}

TEST(Campaign, ThrowingJobFailsWithoutAbortingSiblings)
{
    exp::Campaign c;
    exp::SimJob good;
    good.workload = "perl";
    good.configSpec = "baseline";
    good.opts = tinyWindow();

    exp::SimJob bad;
    bad.workload = "explodes";
    bad.configSpec = "baseline";
    bad.runner = [](const exp::SimJob &) -> RunResult {
        throw std::runtime_error("injected fault");
    };

    c.add(bad).add(good);

    exp::CampaignOptions copts;
    copts.jobs = 2;
    copts.maxAttempts = 3;
    const exp::ResultSet results = c.run(copts);

    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results.failedCount(), 1u);
    EXPECT_FALSE(results.allOk());

    const exp::JobOutcome &failed = results.outcomes()[0];
    EXPECT_FALSE(failed.ok);
    EXPECT_EQ(failed.error, "injected fault");
    EXPECT_EQ(failed.attempts, 3u);   // retried, then recorded

    const exp::JobOutcome &ok = results.outcomes()[1];
    EXPECT_TRUE(ok.ok);
    EXPECT_EQ(ok.attempts, 1u);
    EXPECT_GT(ok.result.core.committed, 0u);

    // The failed job is visible through find(), absent stats and all.
    const exp::JobOutcome *found = results.find("explodes", "baseline");
    ASSERT_NE(found, nullptr);
    EXPECT_FALSE(found->ok);
}

TEST(Campaign, ConfigSpecsResolveAndCompose)
{
    EXPECT_TRUE(exp::isValidConfigSpec("baseline"));
    EXPECT_TRUE(exp::isValidConfigSpec("packing-replay+decode8+perfect"));
    EXPECT_FALSE(exp::isValidConfigSpec("warp-drive"));
    EXPECT_FALSE(exp::isValidConfigSpec("baseline+warp"));

    const CoreConfig cfg =
        exp::configBySpec("packing-replay+decode8+perfect");
    EXPECT_TRUE(cfg.packing.enabled);
    EXPECT_TRUE(cfg.packing.replay);
    EXPECT_EQ(cfg.decodeWidth, 8u);
    EXPECT_EQ(cfg.fetchWidth, 8u);
    EXPECT_TRUE(cfg.perfectBPred);

    const CoreConfig wide = exp::configBySpec("issue8");
    EXPECT_EQ(wide.issueWidth, 8u);
    EXPECT_EQ(wide.numAlus, 8u);

    const CoreConfig early = exp::configBySpec("baseline+earlyout");
    EXPECT_TRUE(early.earlyOutMultiply);
    const CoreConfig nogate = exp::configBySpec("baseline+nogate33");
    EXPECT_FALSE(nogate.gating.gate33);
}

TEST(Campaign, JsonSinkEmitsEveryJobAndEscapes)
{
    exp::Campaign c;
    exp::SimJob bad;
    bad.workload = "weird\"name";
    bad.configSpec = "baseline";
    bad.runner = [](const exp::SimJob &) -> RunResult {
        throw std::runtime_error("line1\nline2");
    };
    c.add(bad);
    exp::CampaignOptions copts;
    copts.jobs = 1;
    copts.maxAttempts = 1;
    const exp::ResultSet results = c.run(copts);

    std::ostringstream os;
    results.writeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"weird\\\"name\""), std::string::npos);
    EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
    EXPECT_NE(json.find("\"failed\": 1"), std::string::npos);
    // Balanced braces/brackets (cheap well-formedness check).
    long depth = 0;
    for (char ch : json) {
        if (ch == '{' || ch == '[')
            ++depth;
        if (ch == '}' || ch == ']')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(Campaign, CsvSinkHasOneRowPerJob)
{
    const exp::ResultSet results = runGrid(2);
    std::ostringstream os;
    results.writeCsv(os);
    size_t lines = 0;
    std::string line;
    std::istringstream in(os.str());
    while (std::getline(in, line))
        ++lines;
    EXPECT_EQ(lines, 1 + results.size());   // header + one per job
}

TEST(JobPool, RunsEveryTaskExactlyOnce)
{
    const size_t n = 64;
    std::vector<int> hits(n, 0);
    std::vector<std::function<void()>> tasks;
    for (size_t i = 0; i < n; ++i)
        tasks.push_back([&hits, i] { hits[i]++; });
    exp::JobPool pool(8);
    size_t done = 0;
    pool.run(tasks, [&](size_t) { ++done; });
    EXPECT_EQ(done, n);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i], 1) << i;
}

TEST(JobPool, ResolvesWorkerCount)
{
    EXPECT_EQ(exp::JobPool(3).workers(), 3u);
    EXPECT_GE(exp::JobPool(0).workers(), 1u);
}

} // namespace
} // namespace nwsim
