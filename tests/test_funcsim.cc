/** Unit tests for instruction semantics and the functional simulator. */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "func/func_sim.hh"

namespace nwsim
{
namespace
{

/** Execute `build`'s program on FuncSim; return the sim for probing. */
std::pair<Program, std::unique_ptr<SparseMemory>>
buildAndLoad(const std::function<void(Assembler &)> &build)
{
    Assembler as;
    build(as);
    Program prog = as.assemble();
    auto mem = std::make_unique<SparseMemory>();
    prog.load(*mem);
    return {std::move(prog), std::move(mem)};
}

TEST(Semantics, ArithmeticAndLogic)
{
    Inst inst;
    inst.op = Opcode::ADD;
    EXPECT_EQ(aluResult(inst, 17, 2, 0), 19u);
    inst.op = Opcode::SUB;
    EXPECT_EQ(aluResult(inst, 2, 17, 0), static_cast<u64>(-15));
    inst.op = Opcode::MUL;
    EXPECT_EQ(aluResult(inst, 300, 400, 0), 120000u);
    inst.op = Opcode::DIV;
    EXPECT_EQ(aluResult(inst, static_cast<u64>(-20), 3, 0),
              static_cast<u64>(-6));
    EXPECT_EQ(aluResult(inst, 5, 0, 0), 0u);    // div-by-zero is total
    inst.op = Opcode::REM;
    EXPECT_EQ(aluResult(inst, 20, 6, 0), 2u);
    EXPECT_EQ(aluResult(inst, 20, 0, 0), 0u);
    inst.op = Opcode::BIC;
    EXPECT_EQ(aluResult(inst, 0xff, 0x0f, 0), 0xf0u);
    inst.op = Opcode::SEXTB;
    EXPECT_EQ(aluResult(inst, 0x80, 0, 0), static_cast<u64>(-128));
    inst.op = Opcode::SEXTW;
    EXPECT_EQ(aluResult(inst, 0x8000, 0, 0), static_cast<u64>(-32768));
    inst.op = Opcode::LDAH;
    EXPECT_EQ(aluResult(inst, 4, 3, 0), 4u + (3u << 16));
}

TEST(Semantics, ShiftsMaskAmount)
{
    Inst inst;
    inst.op = Opcode::SLL;
    EXPECT_EQ(aluResult(inst, 1, 65, 0), 2u);   // 65 & 63 == 1
    inst.op = Opcode::SRA;
    EXPECT_EQ(aluResult(inst, static_cast<u64>(-8), 1, 0),
              static_cast<u64>(-4));
    inst.op = Opcode::SRL;
    EXPECT_EQ(aluResult(inst, static_cast<u64>(-8), 1, 0),
              0x7ffffffffffffffcULL);
}

TEST(Semantics, Compares)
{
    Inst inst;
    inst.op = Opcode::CMPLT;
    EXPECT_EQ(aluResult(inst, static_cast<u64>(-1), 0, 0), 1u);
    inst.op = Opcode::CMPULT;
    EXPECT_EQ(aluResult(inst, static_cast<u64>(-1), 0, 0), 0u);
    inst.op = Opcode::CMPLE;
    EXPECT_EQ(aluResult(inst, 5, 5, 0), 1u);
    inst.op = Opcode::CMPEQ;
    EXPECT_EQ(aluResult(inst, 5, 6, 0), 0u);
}

TEST(Semantics, BranchConditions)
{
    EXPECT_TRUE(branchTaken(Opcode::BEQ, 0));
    EXPECT_FALSE(branchTaken(Opcode::BEQ, 1));
    EXPECT_TRUE(branchTaken(Opcode::BNE, static_cast<u64>(-1)));
    EXPECT_TRUE(branchTaken(Opcode::BLT, static_cast<u64>(-1)));
    EXPECT_FALSE(branchTaken(Opcode::BLT, 0));
    EXPECT_TRUE(branchTaken(Opcode::BLE, 0));
    EXPECT_TRUE(branchTaken(Opcode::BGT, 1));
    EXPECT_FALSE(branchTaken(Opcode::BGT, 0));
    EXPECT_TRUE(branchTaken(Opcode::BGE, 0));
    EXPECT_TRUE(branchTaken(Opcode::BR, 12345));
}

TEST(Semantics, LoadValueExtension)
{
    EXPECT_EQ(loadValue(Opcode::LDQ, ~u64{0}), ~u64{0});
    EXPECT_EQ(loadValue(Opcode::LDL, 0x80000000u),
              0xffffffff80000000ULL);
    EXPECT_EQ(loadValue(Opcode::LDWU, 0xffff8000u), 0x8000u);
    EXPECT_EQ(loadValue(Opcode::LDBU, 0x1ff), 0xffu);
}

TEST(FuncSim, Fibonacci)
{
    auto [prog, mem] = buildAndLoad([](Assembler &as) {
        // r1 = fib(20) iteratively.
        as.li(1, 0);
        as.li(2, 1);
        as.li(3, 20);
        as.label("loop");
        as.beq(3, "done");
        as.add(4, 1, 2);
        as.mov(1, 2);
        as.mov(2, 4);
        as.subi(3, 3, 1);
        as.br("loop");
        as.label("done");
        as.halt();
    });
    FuncSim sim(*mem, prog.entry);
    sim.run(1000);
    EXPECT_TRUE(sim.halted());
    EXPECT_EQ(sim.reg(1), 6765u);   // fib(20)
}

TEST(FuncSim, MemoryAndStack)
{
    auto [prog, mem] = buildAndLoad([](Assembler &as) {
        as.subi(spReg, spReg, 16);
        as.li(1, 77);
        as.stq(1, 8, spReg);
        as.li(1, 0);
        as.ldq(1, 8, spReg);
        as.halt();
    });
    FuncSim sim(*mem, prog.entry);
    sim.run(100);
    EXPECT_EQ(sim.reg(1), 77u);
    EXPECT_EQ(sim.reg(spReg), layout::stackTop - 16);
}

TEST(FuncSim, IndirectJumpThroughTable)
{
    auto [prog, mem] = buildAndLoad([](Assembler &as) {
        as.la(2, "table");
        as.ldq(3, 8, 2);        // second entry -> "two"
        as.jmp(zeroReg, 3);
        as.label("one");
        as.li(1, 1);
        as.halt();
        as.label("two");
        as.li(1, 2);
        as.halt();
        as.dataLabel("table");
        as.dataQuadSym("one");
        as.dataQuadSym("two");
    });
    FuncSim sim(*mem, prog.entry);
    sim.run(100);
    EXPECT_TRUE(sim.halted());
    EXPECT_EQ(sim.reg(1), 2u);
}

TEST(FuncSim, StepRecordFields)
{
    auto [prog, mem] = buildAndLoad([](Assembler &as) {
        as.li(1, 3);            // addi r1, r31, 3
        as.beq(1, "skip");      // not taken
        as.la(2, "x");
        as.ldq(3, 0, 2);
        as.label("skip");
        as.halt();
        as.dataLabel("x");
        as.dataQuad(42);
    });
    FuncSim sim(*mem, prog.entry);
    const FuncStep s1 = sim.step();
    EXPECT_EQ(s1.result, 3u);
    EXPECT_EQ(s1.nextPc, s1.pc + 4);
    const FuncStep s2 = sim.step();
    EXPECT_FALSE(s2.taken);
    // la is 5 instructions.
    for (int i = 0; i < 5; ++i)
        sim.step();
    const FuncStep s3 = sim.step();     // the ldq
    EXPECT_EQ(s3.inst.op, Opcode::LDQ);
    EXPECT_EQ(s3.effAddr, prog.symbol("x"));
    EXPECT_EQ(s3.result, 42u);
    const FuncStep s4 = sim.step();     // halt
    EXPECT_TRUE(s4.halted);
    EXPECT_TRUE(sim.halted());
    // Further steps are inert.
    const FuncStep s5 = sim.step();
    EXPECT_TRUE(s5.halted);
    EXPECT_EQ(sim.instCount(), 9u);
}

TEST(FuncSim, HaltStopsRun)
{
    auto [prog, mem] = buildAndLoad([](Assembler &as) {
        as.nop();
        as.nop();
        as.halt();
        as.nop();
    });
    FuncSim sim(*mem, prog.entry);
    const u64 steps = sim.run(100);
    EXPECT_EQ(steps, 3u);
    EXPECT_TRUE(sim.halted());
}

} // namespace
} // namespace nwsim
