/**
 * Determinism guarantees: identical builds, identical simulations,
 * identical statistics — run to run. Every experiment in the paper
 * reproduction depends on this.
 */

#include <gtest/gtest.h>

#include "driver/presets.hh"
#include "driver/runner.hh"
#include "workloads/kernels.hh"

namespace nwsim
{
namespace
{

TEST(Determinism, ProgramImagesAreBitIdentical)
{
    for (const Workload &w : allWorkloads()) {
        const Program a = w.program();
        const Program b = w.program();
        ASSERT_EQ(a.segments.size(), b.segments.size()) << w.name;
        for (size_t s = 0; s < a.segments.size(); ++s) {
            EXPECT_EQ(a.segments[s].base, b.segments[s].base);
            EXPECT_EQ(a.segments[s].bytes, b.segments[s].bytes)
                << w.name << " segment " << s;
        }
        EXPECT_EQ(a.symbols, b.symbols) << w.name;
    }
}

TEST(Determinism, ReferencesAreStable)
{
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(compressReference(1), compressReference(1));
        EXPECT_EQ(gsmEncodeReference(1), gsmEncodeReference(1));
        EXPECT_EQ(m88ksimReference(1), m88ksimReference(1));
    }
}

TEST(Determinism, RepeatedRunsProduceIdenticalStats)
{
    const Program prog = makeGo(45).program();
    RunOptions opts;
    opts.warmupInsts = 10000;
    opts.measureInsts = 60000;

    auto run = [&] {
        return runProgram(prog, presets::packing(true), opts, "go",
                          "det");
    };
    const RunResult a = run();
    const RunResult b = run();
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.core.committed, b.core.committed);
    EXPECT_EQ(a.core.issued, b.core.issued);
    EXPECT_EQ(a.core.squashed, b.core.squashed);
    EXPECT_EQ(a.core.mispredictSquashes, b.core.mispredictSquashes);
    EXPECT_EQ(a.packing.packedGroups, b.packing.packedGroups);
    EXPECT_EQ(a.packing.packedInsts, b.packing.packedInsts);
    EXPECT_EQ(a.packing.replayTraps, b.packing.replayTraps);
    EXPECT_DOUBLE_EQ(a.gating.baselineMwSum, b.gating.baselineMwSum);
    EXPECT_DOUBLE_EQ(a.gating.gatedMwSum, b.gating.gatedMwSum);
    EXPECT_EQ(a.profiler.totalOps(), b.profiler.totalOps());
    EXPECT_DOUBLE_EQ(a.profiler.fluctuationPercent(),
                     b.profiler.fluctuationPercent());
    EXPECT_DOUBLE_EQ(a.profiler.cumulativePercent(16),
                     b.profiler.cumulativePercent(16));
}

TEST(Determinism, StatInvariantsHold)
{
    const Program prog = makeCompress(2).program();
    RunOptions opts;
    opts.warmupInsts = 10000;
    opts.measureInsts = 80000;
    const RunResult r =
        runProgram(prog, presets::baseline(), opts, "compress", "inv");
    const CoreStats &s = r.core;
    // Conservation: everything committed was issued; everything issued
    // was dispatched; everything dispatched was fetched (within this
    // window, wrong-path work makes these inequalities strict).
    EXPECT_LE(s.committed, s.issued);
    EXPECT_LE(s.committed, s.dispatched);
    EXPECT_LE(s.dispatched, s.fetched);
    // Ready pressure can't be below what actually issued.
    EXPECT_GE(s.readyOpsSum, s.issued);
    EXPECT_LE(s.issueLimitedCycles, s.cycles);
    // Power accounting: gated never exceeds baseline; savings add up.
    const GatingStats &g = r.gating;
    EXPECT_LE(g.gatedMwSum, g.baselineMwSum);
    // Relative tolerance: the sums accumulate ~1e7 mW of fp additions.
    EXPECT_NEAR(g.baselineMwSum,
                g.gatedMwSum + g.saved16MwSum + g.saved33MwSum,
                1e-9 * g.baselineMwSum);
    EXPECT_LE(g.gated16 + g.gated33, g.ops);
}

} // namespace
} // namespace nwsim
