/**
 * @file
 * The declarative configuration surface (docs/CONFIG.md): parser
 * grammar and error taxonomy, field-table binding, preset/.cfg twin
 * identity, spec-grammar aliasing, the workload generator's
 * determinism, and the mutated-bytes fuzz drill (arbitrary input must
 * always produce a classified BadInputError, never UB).
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cfg/config.hh"
#include "cfg/fields.hh"
#include "cfg/loader.hh"
#include "cfg/wgen.hh"
#include "common/error.hh"
#include "common/rng.hh"
#include "driver/presets.hh"
#include "driver/runner.hh"
#include "exp/campaign.hh"
#include "exp/configs.hh"
#include "exp/wire.hh"
#include "stat_diff.hh"

using namespace nwsim;
using test::statIdentical;

namespace
{

/** Scratch directory for files this suite writes. */
std::string
scratchDir()
{
    static const std::string dir = [] {
        std::string d =
            std::filesystem::temp_directory_path() / "nwsim_cfg_test";
        std::filesystem::create_directories(d);
        return d;
    }();
    return dir;
}

std::string
writeFile(const std::string &name, const std::string &text)
{
    const std::string path = scratchDir() + "/" + name;
    std::ofstream out(path);
    out << text;
    return path;
}

/** Shipped configs/ directory (compile definition from CMake). */
std::string
shippedConfig(const std::string &name)
{
    return std::string(NWSIM_CONFIGS_DIR) + "/" + name;
}

} // namespace

// ---- parser grammar -------------------------------------------------

TEST(CfgParser, SectionsEntriesAndComments)
{
    const cfg::ConfigFile f = cfg::parseConfigText(
        "top = 1           # trailing comment\n"
        "; full-line comment\n"
        "[machine]\n"
        "ruuSize = 128\n"
        "name = \"quoted ; not a comment\"\n"
        "[workload mix-16]\n"
        "w16 = 80\n");
    ASSERT_EQ(f.sections.size(), 3u);
    EXPECT_EQ(f.globals().find("top")->value.text, "1");
    const cfg::CfgSection *m = f.section("machine");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->find("ruuSize")->value.text, "128");
    EXPECT_EQ(m->find("name")->value.text, "quoted ; not a comment");
    EXPECT_TRUE(m->find("name")->value.quoted);
    const cfg::CfgSection *w = f.section("workload", "mix-16");
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->find("w16")->value.text, "80");
}

TEST(CfgParser, LaterBindingsOverride)
{
    const cfg::ConfigFile f = cfg::parseConfigText(
        "[machine]\nruuSize = 64\nruuSize = 96\n");
    EXPECT_EQ(f.section("machine")->find("ruuSize")->value.text, "96");
}

TEST(CfgParser, VariableSubstitutionAndArithmetic)
{
    const cfg::ConfigFile f = cfg::parseConfigText(
        "issue = 4\n"
        "[machine]\n"
        "issueWidth = $(issue)\n"
        "ruuSize = $(issue) * 20\n");
    const cfg::CfgSection *m = f.section("machine");
    EXPECT_DOUBLE_EQ(cfg::entryNumber(f, *m->find("issueWidth")), 4.0);
    EXPECT_DOUBLE_EQ(cfg::entryNumber(f, *m->find("ruuSize")), 80.0);
}

TEST(CfgParser, ArrayKeysExpandWithIndex)
{
    const cfg::ConfigFile f = cfg::parseConfigText(
        "[sweep]\nworkloads[0:2] = \"wgen:seed=$(i)\"\n");
    const cfg::CfgSection *s = f.section("sweep");
    ASSERT_EQ(s->entries.size(), 3u);
    EXPECT_EQ(s->entries[0].key, "workloads[0]");
    EXPECT_EQ(s->entries[0].value.text, "wgen:seed=0");
    EXPECT_EQ(s->entries[2].key, "workloads[2]");
    EXPECT_EQ(s->entries[2].value.text, "wgen:seed=2");
}

TEST(CfgParser, ExpressionEvaluator)
{
    double v = 0;
    std::string err;
    EXPECT_TRUE(cfg::evalExpression("2 + 3 * 4", v, err));
    EXPECT_DOUBLE_EQ(v, 14.0);
    EXPECT_TRUE(cfg::evalExpression("(2 + 3) * -4", v, err));
    EXPECT_DOUBLE_EQ(v, -20.0);
    EXPECT_TRUE(cfg::evalExpression("0x40", v, err));
    EXPECT_DOUBLE_EQ(v, 64.0);
    EXPECT_FALSE(cfg::evalExpression("1 / 0", v, err));
    EXPECT_FALSE(cfg::evalExpression("2 +", v, err));
    EXPECT_FALSE(cfg::evalExpression("((((", v, err));
}

/** Error-path table: every malformed input is a classified
 *  BadInputError whose message carries file:line context. */
TEST(CfgParser, ErrorTaxonomy)
{
    struct Case
    {
        const char *text;
        const char *expect;   // substring of the error message
    };
    const Case cases[] = {
        {"[machine\nruuSize = 1\n", "missing closing"},
        {"[machine extra words here]\n", "malformed section"},
        {"[machine]\n= 5\n", "key"},
        {"[machine]\nruuSize 5\n", "="},
        {"[machine]\nruuSize = \"unterminated\n", "quote"},
        {"[machine]\nruuSize = $(nope)\n", "nope"},
        {"[machine]\nruuSize = $(broken\n", "unterminated $("},
        {"[sweep]\nx[5:2] = 1\n", "array"},
        {"[sweep]\nx[0:999999999] = 1\n", "array"},
    };
    for (const Case &c : cases) {
        try {
            (void)cfg::parseConfigText(c.text, "err.cfg");
            FAIL() << "no error for: " << c.text;
        } catch (const BadInputError &e) {
            EXPECT_NE(std::string(e.what()).find("err.cfg:"),
                      std::string::npos)
                << "no file:line context in: " << e.what();
            EXPECT_NE(std::string(e.what()).find(c.expect),
                      std::string::npos)
                << "expected \"" << c.expect << "\" in: " << e.what();
        }
    }
}

TEST(CfgParser, ClosestNameSuggestions)
{
    const std::vector<std::string> known = {"issueWidth", "ruuSize",
                                            "lsqSize"};
    EXPECT_EQ(cfg::closestName("issueWidht", known), "issueWidth");
    EXPECT_EQ(cfg::closestName("ruusize", known), "ruuSize");
    EXPECT_EQ(cfg::closestName("zzzzzz", known), "");
}

// ---- field table ----------------------------------------------------

TEST(CfgFields, TableCoversWireSurface)
{
    // The wire format packs the full CoreConfig; the field table must
    // bind the same surface. A new CoreConfig member shows up here as
    // a pack/dump round-trip mismatch (see TwinIdentity below); this
    // guards the table's internal consistency.
    const std::vector<cfg::FieldDesc> &fields = cfg::coreConfigFields();
    EXPECT_GE(fields.size(), 60u);
    for (const cfg::FieldDesc &f : fields) {
        EXPECT_NE(cfg::findField(f.name), nullptr) << f.name;
        // Defaults must satisfy their own declared ranges.
        EXPECT_NO_THROW(
            cfg::checkFieldValue(f, f.get(CoreConfig{}), ""))
            << f.name;
    }
}

TEST(CfgFields, RangeAndTypeViolations)
{
    const cfg::FieldDesc *ruu = cfg::findField("ruuSize");
    ASSERT_NE(ruu, nullptr);
    EXPECT_THROW(cfg::checkFieldValue(*ruu, 0, ""), BadInputError);
    EXPECT_THROW(cfg::checkFieldValue(*ruu, 1.5, ""), BadInputError);
    const cfg::FieldDesc *b = cfg::findField("packing.enabled");
    ASSERT_NE(b, nullptr);
    EXPECT_THROW(cfg::checkFieldValue(*b, 2, ""), BadInputError);
    EXPECT_NO_THROW(cfg::checkFieldValue(*b, 1, ""));
}

TEST(CfgFields, DiffAndSameConfig)
{
    CoreConfig a = presets::baseline();
    CoreConfig b = a;
    EXPECT_TRUE(cfg::sameConfig(a, b));
    EXPECT_TRUE(cfg::diffConfigs(a, b).empty());
    b.issueWidth = 8;
    b.packing.enabled = true;
    const std::vector<cfg::FieldDiff> d = cfg::diffConfigs(a, b);
    ASSERT_EQ(d.size(), 2u);
    EXPECT_STREQ(d[0].field->name, "issueWidth");
    EXPECT_STREQ(d[1].field->name, "packing.enabled");
    EXPECT_FALSE(cfg::sameConfig(a, b));
}

// ---- loader: specs, files, twins ------------------------------------

TEST(CfgLoader, DumpParseRoundTripIsBitIdentical)
{
    const char *specs[] = {
        "baseline",
        "packing",
        "packing-replay+decode8",
        "issue8+perfect+earlyout",
        "baseline+sample=200000:2000:8000",
        "packing+sample=200000:2000:8000:rand:7+ckpt=1000000",
    };
    for (const char *spec : specs) {
        const cfg::MachineSpec a = cfg::resolveMachineSpec(spec);
        const std::string dump = cfg::canonicalMachineDump(a);
        const std::string path =
            writeFile("roundtrip.cfg", dump);
        const cfg::MachineSpec b = cfg::resolveMachineSpec(path);
        EXPECT_TRUE(cfg::sameConfig(a.config, b.config)) << spec;
        // Dump of the re-parse must be byte-identical modulo the
        // provenance comment (which names the spec it came from).
        std::string da = dump, db = cfg::canonicalMachineDump(b);
        da.erase(0, da.find("[machine]"));
        db.erase(0, db.find("[machine]"));
        EXPECT_EQ(da, db) << spec;
        // Schedule properties survive the file round trip too.
        EXPECT_EQ(a.sample.enabled, b.sample.enabled) << spec;
        EXPECT_EQ(a.sample.periodInsts, b.sample.periodInsts) << spec;
        EXPECT_EQ(a.ckptEvery, b.ckptEvery) << spec;
    }
}

TEST(CfgLoader, ShippedTwinsMatchPresets)
{
    const char *names[] = {"baseline", "packing", "packing-replay",
                           "issue8"};
    for (const char *name : names) {
        const cfg::MachineSpec preset = cfg::resolveMachineSpec(name);
        const cfg::MachineSpec twin = cfg::resolveMachineSpec(
            shippedConfig(std::string(name) + ".cfg"));
        EXPECT_TRUE(cfg::sameConfig(preset.config, twin.config))
            << name;
        // Byte-level: the packed wire blobs of two grid jobs must be
        // identical except for the label fields.
        exp::SimJob a, b;
        a.workload = b.workload = "x";
        a.configSpec = b.configSpec = "y";
        a.config = preset.config;
        b.config = twin.config;
        b.configText.clear();   // labels/text differ by design
        EXPECT_EQ(exp::packSimJobSpec(a), exp::packSimJobSpec(b))
            << name;
    }
}

TEST(CfgLoader, ModifiersMatchLegacyMeaning)
{
    const cfg::MachineSpec m =
        cfg::resolveMachineSpec("baseline+decode8+perfect+earlyout");
    CoreConfig want = presets::decode8(presets::baseline());
    want.perfectBPred = true;
    want.earlyOutMultiply = true;
    EXPECT_TRUE(cfg::sameConfig(m.config, want));

    const cfg::MachineSpec s =
        cfg::resolveMachineSpec("baseline+sample=4000:500:1500:rand:9");
    EXPECT_TRUE(s.sample.enabled);
    EXPECT_EQ(s.sample.periodInsts, 4000u);
    EXPECT_EQ(s.sample.warmupInsts, 500u);
    EXPECT_EQ(s.sample.measureInsts, 1500u);

    EXPECT_EQ(cfg::resolveMachineSpec("baseline+ckpt=5000").ckptEvery,
              5000u);
}

TEST(CfgLoader, UnknownNamesGetSuggestions)
{
    try {
        cfg::resolveMachineSpec("packing-reply");
        FAIL();
    } catch (const BadInputError &e) {
        EXPECT_NE(std::string(e.what()).find("packing-replay"),
                  std::string::npos)
            << e.what();
    }
    try {
        cfg::resolveMachineSpec("baseline+decode88");
        FAIL();
    } catch (const BadInputError &e) {
        EXPECT_NE(std::string(e.what()).find("decode8"),
                  std::string::npos)
            << e.what();
    }
    const std::string path = writeFile(
        "typo.cfg", "[machine]\ninherit = \"baseline\"\nisseWidth = 8\n");
    try {
        cfg::resolveMachineSpec(path);
        FAIL();
    } catch (const BadInputError &e) {
        EXPECT_NE(std::string(e.what()).find("issueWidth"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("typo.cfg:3"),
                  std::string::npos)
            << e.what();
    }
}

TEST(CfgLoader, InheritanceChainsAndCycles)
{
    const std::string base = writeFile(
        "chain_base.cfg",
        "[machine]\ninherit = \"baseline\"\nruuSize = 96\n");
    const std::string mid = writeFile(
        "chain_mid.cfg",
        "[machine]\ninherit = \"chain_base.cfg\"\nissueWidth = 8\n");
    const cfg::MachineSpec m = cfg::resolveMachineSpec(mid);
    EXPECT_EQ(m.config.ruuSize, 96u);
    EXPECT_EQ(m.config.issueWidth, 8u);

    const std::string a = scratchDir() + "/cycle_a.cfg";
    const std::string b = scratchDir() + "/cycle_b.cfg";
    writeFile("cycle_a.cfg",
              "[machine]\ninherit = \"cycle_b.cfg\"\n");
    writeFile("cycle_b.cfg",
              "[machine]\ninherit = \"cycle_a.cfg\"\n");
    EXPECT_THROW(cfg::resolveMachineSpec(a), BadInputError);
    (void)b;
}

TEST(CfgLoader, CrossFieldValidation)
{
    // Non-power-of-two cache set count: must be a classified input
    // error (the cache indexes with a pow2 mask), not an assert.
    const std::string path = writeFile(
        "badgeom.cfg",
        "[machine]\ninherit = \"baseline\"\n"
        "mem.l1d.sizeBytes = 3000\n");
    EXPECT_THROW(cfg::resolveMachineSpec(path), BadInputError);
}

TEST(CfgLoader, LegacyAliasesResolveThroughSameLoader)
{
    // exp::configBySpec and friends are thin aliases (satellite: the
    // three ad-hoc modifier parsers are gone).
    EXPECT_TRUE(cfg::sameConfig(
        exp::configBySpec("packing-replay+decode8"),
        cfg::resolveMachineSpec("packing-replay+decode8").config));
    EXPECT_TRUE(exp::isValidConfigSpec("baseline+perfect"));
    EXPECT_FALSE(exp::isValidConfigSpec("baseline+nonsense"));
    EXPECT_EQ(exp::ckptBySpec("baseline+ckpt=123"), 123u);
    EXPECT_TRUE(exp::sampleBySpec("baseline+sample=4000:500:1500")
                    .enabled);
}

// ---- workload generator ---------------------------------------------

TEST(CfgWgen, DeterministicAndCanonical)
{
    const cfg::WgenParams p =
        cfg::parseWgenSpec("wgen:seed=7,ops=32,w16=80,w33=10,w64=10");
    EXPECT_EQ(p.seed, 7u);
    EXPECT_EQ(p.ops, 32u);
    // Same params -> byte-identical text, everywhere, every time.
    EXPECT_EQ(cfg::wgenProgramText(p), cfg::wgenProgramText(p));
    // Canonical spec round-trips to the same params and text.
    const cfg::WgenParams q =
        cfg::parseWgenSpec(cfg::canonicalWgenSpec(p));
    EXPECT_EQ(cfg::wgenProgramText(p), cfg::wgenProgramText(q));
    // Different seeds -> different programs.
    cfg::WgenParams r = p;
    r.seed = 8;
    EXPECT_NE(cfg::wgenProgramText(p), cfg::wgenProgramText(r));
}

TEST(CfgWgen, GeneratedProgramsRunToCompletion)
{
    for (u64 seed : {1ull, 99ull, 12345ull}) {
        cfg::WgenParams p;
        p.seed = seed;
        p.ops = 24;
        p.iters = 8;
        p.blocks = 2;
        p.load = 20;
        p.store = 12;
        RunOptions opts;
        opts.warmupInsts = 0;
        opts.fastWarmup = false;
        opts.measureInsts = 10'000'000;
        const RunResult r =
            runProgram(cfg::wgenProgram(p), presets::baseline(), opts,
                       "wgen", "baseline");
        // Halted on its own, having committed real work.
        EXPECT_GT(r.core.committed, 100u) << seed;
    }
}

TEST(CfgWgen, SpecErrorsAreClassified)
{
    EXPECT_THROW(cfg::parseWgenSpec("wgen:sede=7"), BadInputError);
    EXPECT_THROW(cfg::parseWgenSpec("wgen:ops=0"), BadInputError);
    EXPECT_THROW(cfg::parseWgenSpec("wgen:regionBytes=3000"),
                 BadInputError);
    EXPECT_THROW(cfg::parseWgenSpec("wgen:w16=0,w33=0,w64=0"),
                 BadInputError);
    EXPECT_TRUE(cfg::isKnownWorkloadName("wgen:seed=3"));
    EXPECT_FALSE(cfg::isKnownWorkloadName("wgen:sede=3"));
    EXPECT_FALSE(cfg::isKnownWorkloadName("no-such-workload"));
}

// ---- grid / campaign integration ------------------------------------

TEST(CfgCampaign, PresetAndTwinGridsAreStatIdentical)
{
    RunOptions opts;
    opts.warmupInsts = 1000;
    opts.measureInsts = 6000;
    const std::vector<std::string> workloads = {"li",
                                                "wgen:seed=5,iters=64"};
    exp::Campaign presetGrid =
        exp::Campaign::grid(workloads, {"packing-replay"}, opts);
    exp::Campaign twinGrid = exp::Campaign::grid(
        workloads, {shippedConfig("packing-replay.cfg")}, opts);
    exp::CampaignOptions copts;
    const exp::ResultSet a = presetGrid.run(copts);
    const exp::ResultSet b = twinGrid.run(copts);
    ASSERT_EQ(a.outcomes().size(), b.outcomes().size());
    for (size_t i = 0; i < a.outcomes().size(); ++i) {
        ASSERT_TRUE(a.outcomes()[i].ok);
        ASSERT_TRUE(b.outcomes()[i].ok);
        EXPECT_TRUE(statIdentical(a.outcomes()[i].result,
                                  b.outcomes()[i].result));
    }
}

TEST(CfgCampaign, ConfigTextRidesWireV7)
{
    RunOptions opts;
    exp::Campaign c = exp::Campaign::grid(
        {"li"}, {shippedConfig("baseline.cfg")}, opts);
    ASSERT_EQ(c.jobs().size(), 1u);
    const exp::SimJob &job = c.jobs()[0];
    EXPECT_FALSE(job.configText.empty());
    exp::SimJob back;
    ASSERT_EQ(exp::unpackSimJobSpec(exp::packSimJobSpec(job), back),
              exp::WireError::None);
    EXPECT_EQ(back.configText, job.configText);
    EXPECT_TRUE(cfg::sameConfig(back.config, job.config));
    // The shipped text is itself a loadable machine (reproducer
    // bundles replay machine.cfg directly).
    const std::string path =
        writeFile("wire_roundtrip.cfg", back.configText);
    EXPECT_TRUE(cfg::sameConfig(
        cfg::resolveMachineSpec(path).config, job.config));
}

TEST(CfgCampaign, SweepFilesExpandTheGrid)
{
    const std::string sweep = writeFile(
        "mini_sweep.cfg",
        "[sweep]\n"
        "machines = baseline, issue8\n"
        "workloads[0:1] = \"wgen:seed=$(i)+1,iters=16\"\n"
        "workloads[2] = \"mix\"\n"
        "[workload mix]\n"
        "seed = 9\n"
        "iters = 16\n");
    const cfg::SweepPlan plan = cfg::loadSweepFile(sweep);
    ASSERT_EQ(plan.machines.size(), 2u);
    ASSERT_EQ(plan.workloads.size(), 3u);
    EXPECT_EQ(plan.workloads[2].name, "mix");
    EXPECT_FALSE(plan.workloads[0].asmText.empty());
    EXPECT_FALSE(plan.workloads[2].asmText.empty());
    RunOptions opts;
    opts.warmupInsts = 0;
    opts.measureInsts = 100000;
    exp::Campaign c =
        exp::Campaign::sweepGrid(plan.workloads, plan.machines, opts);
    EXPECT_EQ(c.jobs().size(), 6u);
    const exp::ResultSet r = c.run({});
    for (const exp::JobOutcome &o : r.outcomes())
        EXPECT_TRUE(o.ok) << o.label() << ": " << o.error;
}

// ---- fuzz drill -----------------------------------------------------

/**
 * Mutated-bytes drill: arbitrary corruptions of a real config file
 * must always yield either a successful parse or a classified
 * BadInputError — never UB, never an uncaught exception, never an
 * internal-error assert. (The ctest `config`+`sanitize` entry reruns
 * this suite under UBSan via the nested build.)
 */
TEST(CfgFuzz, MutatedConfigBytesNeverEscapeTheTaxonomy)
{
    std::ifstream in(shippedConfig("baseline.cfg"));
    ASSERT_TRUE(in.good());
    std::string base((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    SplitMix64 rng(0xc0ffee);
    size_t parsed = 0, rejected = 0;
    for (int iter = 0; iter < 500; ++iter) {
        std::string text = base;
        // 1..8 byte-level mutations: overwrite, insert, or delete.
        const unsigned edits = 1 + static_cast<unsigned>(rng.below(8));
        for (unsigned e = 0; e < edits && !text.empty(); ++e) {
            const size_t pos = rng.below(text.size());
            switch (rng.below(3)) {
            case 0:
                text[pos] = static_cast<char>(rng.below(256));
                break;
            case 1:
                text.insert(pos, 1,
                            static_cast<char>(rng.below(256)));
                break;
            default:
                text.erase(pos, 1);
                break;
            }
        }
        const std::string path = writeFile("mutant.cfg", text);
        try {
            (void)cfg::resolveMachineSpec(path);
            ++parsed;
        } catch (const BadInputError &) {
            ++rejected;   // classified — exactly what we want
        }
    }
    EXPECT_EQ(parsed + rejected, 500u);
    // Sanity: the drill exercised both outcomes.
    EXPECT_GT(parsed, 0u);
    EXPECT_GT(rejected, 0u);
}

/** Same drill over the wgen spec-string surface. */
TEST(CfgFuzz, MutatedWgenSpecsNeverEscapeTheTaxonomy)
{
    const std::string base =
        "wgen:seed=7,ops=32,iters=8,w16=60,w33=20,w64=20,load=15";
    SplitMix64 rng(0xfeedface);
    for (int iter = 0; iter < 500; ++iter) {
        std::string spec = base;
        const unsigned edits = 1 + static_cast<unsigned>(rng.below(4));
        for (unsigned e = 0; e < edits && !spec.empty(); ++e) {
            const size_t pos = rng.below(spec.size());
            if (rng.below(2))
                spec[pos] = static_cast<char>(rng.below(256));
            else
                spec.erase(pos, 1);
        }
        try {
            if (cfg::isWgenSpec(spec))
                (void)cfg::parseWgenSpec(spec);
        } catch (const BadInputError &) {
            // classified
        }
    }
    SUCCEED();
}
