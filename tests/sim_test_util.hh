/** Shared helpers for pipeline/packing/workload tests. */

#ifndef NWSIM_TESTS_SIM_TEST_UTIL_HH
#define NWSIM_TESTS_SIM_TEST_UTIL_HH

#include <functional>
#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "func/func_sim.hh"
#include "pipeline/core.hh"

namespace nwsim::test
{

inline Program
buildProgram(const std::function<void(Assembler &)> &build)
{
    Assembler as;
    build(as);
    return as.assemble();
}

/**
 * Make cold-cache misses nearly free, so tests of pure pipeline timing
 * behaviour (IPC of straight-line code, issue contention) are not
 * dominated by the one-shot cost of streaming the program image from
 * the Table 1 100-cycle memory.
 */
inline CoreConfig
fastMemory(CoreConfig cfg)
{
    cfg.mem.l2.hitLatency = 1;
    cfg.mem.memoryLatency = 0;
    cfg.mem.itlb.missLatency = 0;
    cfg.mem.dtlb.missLatency = 0;
    return cfg;
}

/** Golden architectural state from the functional simulator. */
struct GoldenRun
{
    std::array<u64, numIntRegs> regs{};
    u64 instCount = 0;
    bool halted = false;
};

inline GoldenRun
runGolden(const Program &prog, u64 max_steps = 20'000'000)
{
    SparseMemory mem;
    prog.load(mem);
    FuncSim sim(mem, prog.entry);
    sim.run(max_steps);
    GoldenRun g;
    g.regs = sim.regFile();
    g.instCount = sim.instCount();
    g.halted = sim.halted();
    return g;
}

/** A core bundled with the memory it runs against. */
struct CoreRun
{
    std::unique_ptr<SparseMemory> mem;
    std::unique_ptr<OutOfOrderCore> core;
};

/**
 * Run @p prog to completion on the out-of-order core and assert the
 * architected result matches the functional golden model exactly:
 * every register, the committed-instruction count, and halting.
 * Returns the core (and its memory) for further stat probing.
 */
inline CoreRun
runDifferential(const Program &prog, const CoreConfig &cfg,
                u64 max_commits = 20'000'000)
{
    const GoldenRun golden = runGolden(prog);
    EXPECT_TRUE(golden.halted) << "golden model did not halt";

    CoreRun run;
    run.mem = std::make_unique<SparseMemory>();
    prog.load(*run.mem);
    run.core =
        std::make_unique<OutOfOrderCore>(cfg, *run.mem, prog.entry);
    run.core->run(max_commits);
    EXPECT_TRUE(run.core->done()) << "pipeline did not halt";
    EXPECT_EQ(run.core->stats().committed, golden.instCount);
    for (RegIndex r = 0; r < numIntRegs; ++r)
        EXPECT_EQ(run.core->reg(r), golden.regs[r]) << "r" << int(r);
    return run;
}

} // namespace nwsim::test

#endif // NWSIM_TESTS_SIM_TEST_UTIL_HH
