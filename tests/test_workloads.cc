/**
 * Workload validation: every kernel's stored checksum must equal its
 * C++ reference implementation (functional run), and the out-of-order
 * pipeline must agree with the functional simulator on a small-rep
 * variant of each kernel — in baseline and packing configurations.
 */

#include <gtest/gtest.h>

#include "driver/presets.hh"
#include "func/func_sim.hh"
#include "pipeline/core.hh"
#include "workloads/kernels.hh"

namespace nwsim
{
namespace
{

/** Small-rep factories so full-program runs stay fast in tests. */
struct Case
{
    const char *name;
    Workload (*make)(unsigned reps);
    u64 (*reference)(unsigned reps);
    unsigned reps;
};

const Case cases[] = {
    {"compress", makeCompress, compressReference, 2},
    {"go", makeGo, goReference, 3},
    {"ijpeg", makeIjpeg, ijpegReference, 1},
    {"li", makeLi, liReference, 4},
    {"m88ksim", makeM88ksim, m88ksimReference, 2},
    {"gcc", makeGcc, gccReference, 2},
    {"perl", makePerl, perlReference, 3},
    {"vortex", makeVortex, vortexReference, 2},
    {"gsm-encode", makeGsmEncode, gsmEncodeReference, 2},
    {"gsm-decode", makeGsmDecode, gsmDecodeReference, 3},
    {"g721encode", makeG721Encode, g721EncodeReference, 2},
    {"g721decode", makeG721Decode, g721DecodeReference, 2},
    {"mpeg2encode", makeMpeg2Encode, mpeg2EncodeReference, 1},
    {"mpeg2decode", makeMpeg2Decode, mpeg2DecodeReference, 1},
};

class WorkloadCase : public ::testing::TestWithParam<Case>
{
};

u64
funcRunChecksum(const Program &prog, u64 *insts = nullptr)
{
    SparseMemory mem;
    prog.load(mem);
    FuncSim sim(mem, prog.entry);
    sim.run(200'000'000);
    EXPECT_TRUE(sim.halted());
    if (insts)
        *insts = sim.instCount();
    return mem.read(prog.symbol("checksum"), 8);
}

TEST_P(WorkloadCase, ChecksumMatchesReference)
{
    const Case &c = GetParam();
    const Workload w = c.make(c.reps);
    const Program prog = w.program();
    EXPECT_EQ(funcRunChecksum(prog), c.reference(c.reps)) << c.name;
}

TEST_P(WorkloadCase, PipelineMatchesFunctional)
{
    const Case &c = GetParam();
    const Program prog = c.make(c.reps).program();
    u64 golden_insts = 0;
    const u64 golden = funcRunChecksum(prog, &golden_insts);

    for (const bool packing : {false, true}) {
        SparseMemory mem;
        prog.load(mem);
        const CoreConfig cfg =
            packing ? presets::packing(true) : presets::baseline();
        OutOfOrderCore core(cfg, mem, prog.entry);
        core.run(200'000'000);
        ASSERT_TRUE(core.done()) << c.name;
        EXPECT_EQ(core.stats().committed, golden_insts) << c.name;
        EXPECT_EQ(mem.read(prog.symbol("checksum"), 8), golden)
            << c.name << " packing=" << packing;
    }
}

TEST_P(WorkloadCase, DefaultRepsCoverMeasurementWindow)
{
    // The registry defaults must provide enough dynamic instructions
    // for the default warmup + measurement window (450k committed).
    const Case &c = GetParam();
    const Program prog = workloadByName(c.name).program();
    SparseMemory mem;
    prog.load(mem);
    FuncSim sim(mem, prog.entry);
    sim.run(460'000);
    EXPECT_FALSE(sim.halted())
        << c.name << " default sizing is too short";
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadCase, ::testing::ValuesIn(cases),
    [](const ::testing::TestParamInfo<Case> &info) {
        std::string n = info.param.name;
        for (auto &ch : n)
            if (ch == '-')
                ch = '_';
        return n;
    });

TEST(Registry, FourteenWorkloadsInTwoSuites)
{
    EXPECT_EQ(allWorkloads().size(), 14u);
    EXPECT_EQ(suiteWorkloads("spec").size(), 8u);
    EXPECT_EQ(suiteWorkloads("media").size(), 6u);
    for (const Workload &w : allWorkloads()) {
        EXPECT_FALSE(w.description.empty()) << w.name;
        const Program prog = w.program();
        EXPECT_GT(prog.imageBytes(), 100u) << w.name;
        EXPECT_NO_FATAL_FAILURE(prog.symbol("checksum"));
    }
    EXPECT_EQ(workloadByName("go").suite, "spec");
    EXPECT_EQ(workloadByName("gsm-encode").suite, "media");
}

} // namespace
} // namespace nwsim
