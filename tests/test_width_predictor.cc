/** Tests for the dynamic operand-width predictor extension. */

#include "sim_test_util.hh"

#include "core/width_predictor.hh"
#include "driver/presets.hh"

namespace nwsim
{
namespace
{

TEST(WidthPredictor, LearnsStableNarrowPc)
{
    WidthPredictor wp;
    for (int i = 0; i < 50; ++i)
        wp.train(0x1000, true);
    EXPECT_TRUE(wp.predictNarrow(0x1000));
    EXPECT_GT(wp.stats().accuracy(), 0.9);
}

TEST(WidthPredictor, LearnsStableWidePc)
{
    WidthPredictor wp;
    for (int i = 0; i < 50; ++i)
        wp.train(0x2000, false);
    EXPECT_FALSE(wp.predictNarrow(0x2000));
    // Initialized weakly-narrow: the first couple of predictions miss.
    EXPECT_GT(wp.stats().correct, 45u);
}

TEST(WidthPredictor, HysteresisAbsorbsSingleFlips)
{
    WidthPredictor wp;
    for (int i = 0; i < 10; ++i)
        wp.train(0x3000, true);     // saturate narrow
    wp.train(0x3000, false);        // one wide execution
    EXPECT_TRUE(wp.predictNarrow(0x3000));  // still predicts narrow
    wp.train(0x3000, false);
    wp.train(0x3000, false);
    EXPECT_FALSE(wp.predictNarrow(0x3000)); // now trained wide
}

TEST(WidthPredictor, MisclassesAreSplitByKind)
{
    WidthPredictor wp;
    for (int i = 0; i < 8; ++i)
        wp.train(0x4000, true);
    wp.train(0x4000, false);        // predicted narrow, was wide
    EXPECT_EQ(wp.stats().falseNarrow, 1u);
    wp.train(0x4000, false);
    wp.train(0x4000, false);
    wp.train(0x4000, true);         // predicted wide, was narrow
    EXPECT_EQ(wp.stats().missedNarrow, 1u);
}

TEST(WidthPredictor, ResetClears)
{
    WidthPredictor wp;
    wp.train(0x5000, false);
    wp.reset();
    EXPECT_EQ(wp.stats().predictions, 0u);
    EXPECT_TRUE(wp.predictNarrow(0x5000));  // back to weakly narrow
}

TEST(WidthPredictor, HighAccuracyOnRealWorkloadStreams)
{
    // Figure 2's claim, quantified: per-PC widths are stable enough
    // that a bimodal predictor is highly accurate.
    const Program prog = test::buildProgram([](Assembler &as) {
        as.la(16, "arr");
        as.li(1, 2000);
        as.li(2, 0);
        as.label("loop");
        as.andi(3, 1, 63);          // narrow every time
        as.slli(4, 3, 3);           // narrow
        as.add(5, 4, 16);           // wide (address) every time
        as.ldq(6, 0, 5);
        as.add(2, 2, 6);
        as.subi(1, 1, 1);
        as.bne(1, "loop");
        as.halt();
        as.dataLabel("arr");
        for (int i = 0; i < 64; ++i)
            as.dataQuad(static_cast<u64>(i));
    });
    auto run = test::runDifferential(prog, presets::baseline());
    EXPECT_GT(run.core->widthPredictor().stats().accuracy(), 0.95);
}

TEST(WidthPredictor, FluctuatingPcsCapAccuracy)
{
    // An instruction whose operand width alternates every execution is
    // the predictor's worst case (Figure 2's fluctuating population).
    WidthPredictor wp;
    for (int i = 0; i < 1000; ++i)
        wp.train(0x6000, (i & 1) != 0);
    EXPECT_LT(wp.stats().accuracy(), 0.7);
}

} // namespace
} // namespace nwsim
