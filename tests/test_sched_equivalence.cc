/**
 * Event-driven scheduler invariant suite (docs/PERF.md).
 *
 * The scheduler rewrite (pipeline/sched.hh) replaced the original
 * O(window)-scan loops; the scan implementation has since been retired
 * entirely (its bit-identity was proven while both existed, and the
 * decode-cache suite now carries the same A/B methodology against
 * `+nodecodecache`). What remains here are the invariants that keep the
 * event path honest on its own:
 *
 *  - Determinism: repeated runs of the same workload x config produce
 *    field-identical statistics, diffed per named field
 *    (tests/stat_diff.hh) so a regression reports *which* counter
 *    drifted, not a byte offset.
 *  - Differential: a branchy, memory-carried program retires the exact
 *    golden-model architectural state.
 *  - Checkers: the cosim oracle + invariant checker stay clean.
 *  - Allocation-free steady state: neither tick() nor the decode-cached
 *    fastForward loop performs heap allocations once warm (counted via
 *    replaced global operator new).
 *  - Eager squash purge: pending completion events always equal the
 *    window's Issued-entry count, even across mispredict squashes, and
 *    drain to zero at halt.
 */

#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "check/session.hh"
#include "exp/configs.hh"
#include "pipeline/observer.hh"
#include "sim_test_util.hh"
#include "stat_diff.hh"
#include "workloads/workload.hh"

// ---- Global allocation counter (zero-alloc steady-state tests) ---------

namespace
{

std::atomic<size_t> allocCount{0};
std::atomic<bool> countAllocs{false};

void *
countedAlloc(std::size_t n)
{
    if (countAllocs.load(std::memory_order_relaxed))
        allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc{};
}

} // namespace

void *operator new(std::size_t n) { return countedAlloc(n); }
void *operator new[](std::size_t n) { return countedAlloc(n); }
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace nwsim
{

/** White-box probe (friend of OutOfOrderCore). */
class CoreInspector
{
  public:
    explicit CoreInspector(OutOfOrderCore &c) : core(c) {}

    /** Scheduled-but-undrained completion events. */
    size_t
    pendingCompletions() const
    {
        return core.completions.pending();
    }

    /** Entries currently executing in a functional unit. */
    size_t
    issuedInWindow() const
    {
        size_t n = 0;
        for (const RuuEntry &e : core.window)
            if (e.state == EntryState::Issued)
                ++n;
        return n;
    }

  private:
    OutOfOrderCore &core;
};

} // namespace nwsim

namespace
{

using namespace nwsim;
using test::buildProgram;
using test::fastMemory;
using test::statIdentical;

// ---- 1. Field-level determinism ----------------------------------------

TEST(SchedEquivalence, GridDeterministicFieldIdentical)
{
    // Strict + replay packing, both issue widths, 8-wide decode, and
    // perfect prediction: every scheduler code path the configs reach.
    // Two independent runs per cell must agree on every named stat.
    const std::vector<std::string> specs = {
        "baseline",
        "packing",
        "packing-replay",
        "issue8",
        "packing-replay+decode8+perfect",
    };
    RunOptions opts;
    opts.warmupInsts = 3000;
    opts.measureInsts = 12000;

    for (const char *wname : {"perl", "gsm-decode"}) {
        const Program prog = workloadByName(wname).program();
        for (const std::string &spec : specs) {
            SCOPED_TRACE(std::string(wname) + "/" + spec);
            const CoreConfig cfg = exp::configBySpec(spec);
            const RunResult a =
                runProgram(prog, cfg, opts, wname, spec);
            const RunResult b =
                runProgram(prog, cfg, opts, wname, spec);
            EXPECT_TRUE(statIdentical(a, b));
            EXPECT_EQ(a.warmupCommitted, b.warmupCommitted);
        }
    }
}

// ---- 2. Differential vs the golden model -------------------------------

Program
branchyMemProgram()
{
    // LCG-driven data-dependent branches over a small store/load
    // working set: mispredict squashes, store-to-load forwarding, and
    // partial-width (32-bit over 64-bit) overlap on every iteration.
    return buildProgram([](Assembler &as) {
        as.li(1, 0x1234567);
        as.li(9, 1103515245);
        as.li(2, 4000);        // iterations
        as.li(8, 0);           // checksum accumulator
        as.addi(10, 30, -256); // scratch buffer below the stack top
        as.label("loop");
        as.mul(1, 1, 9);
        as.addi(1, 1, 12345);
        as.srli(3, 1, 13);
        as.andi(3, 3, 1);
        as.stq(1, 0, 10);
        as.beq(3, "skip");
        as.stl(8, 4, 10);      // overlaps the stq's upper half
        as.ldq(4, 0, 10);
        as.add(8, 8, 4);
        as.label("skip");
        as.ldl(5, 0, 10);
        as.xor_(8, 8, 5);
        as.subi(2, 2, 1);
        as.bne(2, "loop");
        as.halt();
    });
}

TEST(SchedEquivalence, DifferentialGoldenModel)
{
    const Program prog = branchyMemProgram();
    const CoreConfig cfg =
        fastMemory(exp::configBySpec("packing-replay"));
    test::CoreRun run = test::runDifferential(prog, cfg);
    EXPECT_GT(run.core->stats().mispredictSquashes, 20u);
}

// ---- 3. Cosim oracle + invariant checker on the event path -------------

TEST(SchedEquivalence, CheckersCleanOnEventScheduler)
{
    RunOptions opts;
    opts.warmupInsts = 2000;
    opts.measureInsts = 10000;
    for (const char *spec : {"packing-replay", "issue8"}) {
        SCOPED_TRACE(spec);
        const CheckedRunOutcome out =
            runCheckedProgram(workloadByName("li").program(),
                              exp::configBySpec(spec), opts, "li", spec);
        EXPECT_TRUE(out.ok) << out.report;
        EXPECT_GT(out.commitsChecked, 0u);
    }
}

// ---- 4. Zero heap allocations in steady state --------------------------

Program
steadyLoopProgram(i64 iterations)
{
    return buildProgram([iterations](Assembler &as) {
        as.li(1, 0x1234567);
        as.li(2, iterations);
        as.addi(10, 30, -256);
        as.label("loop");
        as.mul(3, 1, 1);
        as.addi(1, 1, 7);
        as.stq(3, 0, 10);
        as.ldq(4, 0, 10);
        as.add(5, 4, 3);
        as.andi(6, 5, 255);
        as.stl(6, 8, 10);
        as.ldl(7, 8, 10);
        as.add(8, 8, 7);
        as.subi(2, 2, 1);
        as.bne(2, "loop");
        as.halt();
    });
}

/**
 * Self-check the counter: a fresh vector must register, or the
 * zero-allocation assertions would pass vacuously.
 */
void
assertCounterLive()
{
    allocCount.store(0);
    countAllocs.store(true);
    {
        std::vector<u64> probe(64);
        probe[0] = 1;
    }
    countAllocs.store(false);
    ASSERT_GT(allocCount.load(), 0u) << "operator new not intercepted";
}

TEST(SchedEquivalence, SteadyStateTickDoesNotAllocate)
{
    const Program prog = steadyLoopProgram(20000);
    assertCounterLive();

    const CoreConfig cfg =
        fastMemory(exp::configBySpec("packing-replay"));
    SparseMemory mem;
    prog.load(mem);
    OutOfOrderCore core(cfg, mem, prog.entry);

    // Warm: touch every page, fill the predictor, grow every scratch
    // vector and wheel slot to its steady-state capacity.
    core.run(30000);
    ASSERT_FALSE(core.done());

    allocCount.store(0);
    countAllocs.store(true);
    core.run(3000);
    countAllocs.store(false);
    EXPECT_EQ(allocCount.load(), 0u)
        << "tick() allocated in steady state";
}

TEST(SchedEquivalence, WarmFastForwardDoesNotAllocate)
{
    // Once the basic-block decode cache holds the loop — and, past the
    // promotion threshold, the superblock trace cache holds its trace
    // (func/superblock.hh) — the threaded fastForward dispatch must run
    // allocation-free: no block decodes, no trace formation, no hash
    // growth, no per-instruction scratch.
    const Program prog = steadyLoopProgram(20000);
    assertCounterLive();

    const CoreConfig cfg =
        fastMemory(exp::configBySpec("packing-replay"));
    ASSERT_TRUE(cfg.decodeCache);
    SparseMemory mem;
    prog.load(mem);
    OutOfOrderCore core(cfg, mem, prog.entry);

    // A fastForward call can end mid-block, and the *next* call then
    // decodes one fresh block starting at that interior PC — a
    // call-boundary artifact, not steady state. Chunks are a multiple
    // of the loop-body length (11 instructions), so every call enters
    // at the same loop offset and the second warm call pre-decodes the
    // measured call's entry block.
    constexpr u64 kChunk = 11 * 2000;
    // Warm: decode the loop's blocks, memoize their chain links, touch
    // every memory page and predictor table the loop reaches.
    ASSERT_EQ(core.fastForward(kChunk), kChunk);
    ASSERT_EQ(core.fastForward(kChunk), kChunk);

    allocCount.store(0);
    countAllocs.store(true);
    const u64 measured = core.fastForward(kChunk);
    countAllocs.store(false);
    EXPECT_EQ(measured, kChunk);
    EXPECT_EQ(allocCount.load(), 0u)
        << "decode-cached fastForward allocated in steady state";

    // And the warm loop really was served by the caches: once the hot
    // loop promotes to a superblock trace, the block-cache loop sees
    // only the cold decodes and occasional side-exit re-entries, so the
    // honest steady-state assertion is that traced dispatch covered
    // nearly everything — not a block-cache hit rate over a handful of
    // residual lookups.
    const DecodeCacheStats dc = core.decodeCacheStats();
    EXPECT_GT(dc.lookups, 0u);
    const SuperblockStats sb = core.superblockStats();
    EXPECT_GT(sb.formed, 0u);
    EXPECT_GT(sb.entries, 0u);
    EXPECT_GT(sb.tracedInsts, 2 * kChunk)
        << "the hot loop should run out of the formed trace";
    EXPECT_LT(dc.lookups, kChunk / 10)
        << "traced steady state should bypass per-block lookups";
}

// ---- 5. Eager purge of squashed completion events ----------------------

/** Counts squashes that killed an executing (Issued) entry. */
class SquashProbe : public CoreObserver
{
  public:
    size_t issuedSquashed = 0;

    void
    onSquash(const RuuEntry &e) override
    {
        if (e.state == EntryState::Issued)
            ++issuedSquashed;
    }
};

TEST(SchedEquivalence, SquashPurgesPendingCompletions)
{
    // The branch depends on a multiply chain (resolves late) while the
    // speculated path issues long-latency multiplies immediately, so
    // mispredict squashes routinely kill Issued entries whose
    // completion events are still pending — exactly what the eager
    // purge must remove.
    const Program prog = buildProgram([](Assembler &as) {
        as.li(1, 12345);
        as.li(9, 1103515245);
        as.li(2, 1500); // iterations
        as.li(8, 1);
        as.label("loop");
        as.mul(1, 1, 9);
        as.addi(1, 1, 12345);
        as.srli(3, 1, 13);
        as.andi(3, 3, 1);
        as.beq(3, "skip");
        as.mul(4, 8, 9); // operands ready at once: issues immediately
        as.mul(5, 4, 9);
        as.add(8, 8, 5);
        as.label("skip");
        as.subi(2, 2, 1);
        as.bne(2, "loop");
        as.halt();
    });

    const CoreConfig cfg = fastMemory(exp::configBySpec("baseline"));
    SparseMemory mem;
    prog.load(mem);
    OutOfOrderCore core(cfg, mem, prog.entry);
    SquashProbe probe;
    core.setObserver(&probe);
    CoreInspector insp(core);

    u64 guard = 0;
    while (!core.done() && guard++ < 500000) {
        core.tick();
        // With lazy invalidation, events of squashed Issued entries
        // would linger and pending would exceed the Issued count.
        ASSERT_EQ(insp.pendingCompletions(), insp.issuedInWindow());
    }
    EXPECT_TRUE(core.done());
    EXPECT_EQ(insp.pendingCompletions(), 0u);
    EXPECT_GT(core.stats().mispredictSquashes, 20u);
    EXPECT_GT(probe.issuedSquashed, 0u);
    core.setObserver(nullptr);
}

} // namespace
