/**
 * Configuration-matrix differential sweep: the pipeline must stay
 * architecturally exact across extreme structural parameters (tiny
 * windows, single-issue, narrow fetch, giant widths, tiny caches) on a
 * branchy, memory-heavy torture program — and obey basic monotonicity.
 */

#include "sim_test_util.hh"

#include "driver/presets.hh"

namespace nwsim
{
namespace
{

/** Branch+load+store torture loop exercising every hazard class. */
Program
tortureProgram()
{
    return test::buildProgram([](Assembler &as) {
        as.la(16, "arr");
        as.li(1, 900);              // iterations
        as.li(2, 0x1d2e);           // lfsr
        as.li(3, 0);                // accumulator
        as.label("loop");
        // lfsr for unpredictable control.
        as.srli(4, 2, 2);
        as.xor_(4, 4, 2);
        as.srli(5, 2, 3);
        as.xor_(4, 4, 5);
        as.andi(4, 4, 1);
        as.srli(2, 2, 1);
        as.slli(5, 4, 15);
        as.or_(2, 2, 5);
        // indexed read-modify-write with store-to-load dependence.
        as.andi(6, 1, 127);
        as.slli(7, 6, 3);
        as.add(7, 7, 16);
        as.ldq(8, 0, 7);
        as.add(8, 8, 6);
        as.stq(8, 0, 7);
        as.ldq(9, 0, 7);            // forwarded
        as.add(3, 3, 9);
        // data-dependent branches with work on both sides.
        as.beq(4, "even");
        as.mul(10, 6, 6);
        as.add(3, 3, 10);
        as.br("join");
        as.label("even");
        as.div(10, 3, 7);
        as.sub(3, 3, 10);
        as.label("join");
        // function call for RAS traffic.
        as.call("bump");
        as.subi(1, 1, 1);
        as.bne(1, "loop");
        as.halt();
        as.label("bump");
        as.addi(3, 3, 1);
        as.ret();
        as.dataLabel("arr");
        as.dataZeros(128 * 8);
    });
}

struct ConfigCase
{
    const char *name;
    unsigned ruu, lsq, fetchq;
    unsigned fetchw, decodew, issuew, commitw;
    unsigned alus, mults;
};

const ConfigCase config_cases[] = {
    {"tiny-window", 4, 2, 2, 1, 1, 1, 1, 1, 1},
    {"small-window", 8, 4, 4, 2, 2, 2, 2, 2, 1},
    {"single-issue", 80, 40, 8, 4, 4, 1, 4, 1, 1},
    {"narrow-fetch", 80, 40, 2, 1, 4, 4, 4, 4, 1},
    {"wide-commit", 80, 40, 8, 4, 4, 4, 16, 4, 1},
    {"mega", 256, 128, 32, 16, 16, 16, 16, 16, 4},
    {"odd-sizes", 13, 7, 3, 3, 5, 3, 2, 3, 2},
};

class ConfigMatrix : public ::testing::TestWithParam<ConfigCase>
{
};

CoreConfig
toConfig(const ConfigCase &c)
{
    CoreConfig cfg = presets::baseline();
    cfg.ruuSize = c.ruu;
    cfg.lsqSize = c.lsq;
    cfg.fetchQueueSize = c.fetchq;
    cfg.fetchWidth = c.fetchw;
    cfg.decodeWidth = c.decodew;
    cfg.issueWidth = c.issuew;
    cfg.commitWidth = c.commitw;
    cfg.numAlus = c.alus;
    cfg.numMultDiv = c.mults;
    return cfg;
}

TEST_P(ConfigMatrix, BaselineExact)
{
    test::runDifferential(tortureProgram(), toConfig(GetParam()));
}

TEST_P(ConfigMatrix, PackingExact)
{
    CoreConfig cfg = toConfig(GetParam());
    cfg.packing.enabled = true;
    cfg.packing.replay = true;
    test::runDifferential(tortureProgram(), cfg);
}

TEST_P(ConfigMatrix, PerfectPredictionExact)
{
    CoreConfig cfg = toConfig(GetParam());
    cfg.perfectBPred = true;
    test::runDifferential(tortureProgram(), cfg);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConfigMatrix, ::testing::ValuesIn(config_cases),
    [](const ::testing::TestParamInfo<ConfigCase> &info) {
        std::string n = info.param.name;
        for (auto &ch : n)
            if (ch == '-')
                ch = '_';
        return n;
    });

TEST(ConfigMonotonicity, BiggerMachinesAreNotSlower)
{
    const Program prog = tortureProgram();
    auto tiny = test::runDifferential(prog, toConfig(config_cases[0]));
    auto small = test::runDifferential(prog, toConfig(config_cases[1]));
    auto base = test::runDifferential(prog, presets::baseline());
    auto mega = test::runDifferential(prog, toConfig(config_cases[5]));
    EXPECT_GE(tiny.core->stats().cycles, small.core->stats().cycles);
    EXPECT_GE(small.core->stats().cycles, base.core->stats().cycles);
    EXPECT_GE(base.core->stats().cycles, mega.core->stats().cycles);
}

TEST(ConfigMonotonicity, TinyCachesHurt)
{
    const Program prog = tortureProgram();
    CoreConfig small_cache = presets::baseline();
    small_cache.mem.l1d = {"l1d", 512, 1, 32, 1};
    small_cache.mem.l1i = {"l1i", 512, 1, 32, 1};
    small_cache.mem.l2 = {"l2", 4096, 1, 32, 12};
    auto base = test::runDifferential(prog, presets::baseline());
    auto starved = test::runDifferential(prog, small_cache);
    EXPECT_GT(starved.core->stats().cycles, base.core->stats().cycles);
}

} // namespace
} // namespace nwsim
