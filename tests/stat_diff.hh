/**
 * Field-level RunResult comparison for equivalence tests.
 *
 * statIdentical() walks every statistic a RunResult carries — core
 * pipeline counters, gating/packing/bpred stats, the full width-profile
 * snapshot (histogram buckets and per-PC width bits included), miss
 * rates, and the sampled-run error bars — comparing each field exactly
 * (doubles by bit pattern: equivalence suites assert determinism, not
 * tolerance) and naming every mismatch with its expected and actual
 * value. A failure reads
 *
 *     stat mismatch in 2 field(s):
 *       core.cycles: 10233 != 10240
 *       profiler.widthHist[17]: 412 != 409
 *
 * instead of the byte offset a wire-blob compare would give.
 *
 * Deliberately NOT compared: workload/configName labels (callers often
 * label variants differently on purpose), warmupCommitted (compared
 * separately where it matters), and RunResult::decodeCache — the
 * decode-cache counters are a host-side metric that legitimately
 * differs between `+nodecodecache` A/B runs whose *simulation* must be
 * identical (tests/test_decode_cache.cc).
 */

#ifndef NWSIM_TESTS_STAT_DIFF_HH
#define NWSIM_TESTS_STAT_DIFF_HH

#include <bit>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "driver/runner.hh"

namespace nwsim::test
{

/** Accumulates named field mismatches between two RunResults. */
class StatDiff
{
  public:
    void
    field(const std::string &name, u64 expected, u64 actual)
    {
        if (expected != actual) {
            add(name, std::to_string(expected),
                std::to_string(actual));
        }
    }

    /**
     * Doubles compare by bit pattern: these suites assert two runs are
     * the *same computation*, where even 1-ulp drift is a finding.
     */
    void
    field(const std::string &name, double expected, double actual)
    {
        if (std::bit_cast<u64>(expected) != std::bit_cast<u64>(actual))
            add(name, fmt(expected), fmt(actual));
    }

    bool clean() const { return count == 0; }

    ::testing::AssertionResult
    result() const
    {
        if (clean())
            return ::testing::AssertionSuccess();
        return ::testing::AssertionFailure()
               << "stat mismatch in " << count << " field(s):\n"
               << report;
    }

  private:
    static std::string
    fmt(double v)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        return buf;
    }

    void
    add(const std::string &name, const std::string &expected,
        const std::string &actual)
    {
        ++count;
        // Cap the report so a totally divergent pair stays readable.
        if (count <= 32) {
            report += "  " + name + ": " + expected + " != " + actual +
                      "\n";
        } else if (count == 33) {
            report += "  ... (further mismatches elided)\n";
        }
    }

    size_t count = 0;
    std::string report;
};

/**
 * Compare every simulation statistic of @p expected and @p actual,
 * returning a gtest assertion naming each mismatched field.
 */
inline ::testing::AssertionResult
statIdentical(const RunResult &expected, const RunResult &actual)
{
    StatDiff d;

    d.field("measuredCommitted", expected.measuredCommitted,
            actual.measuredCommitted);

    const CoreStats &ce = expected.core, &ca = actual.core;
    d.field("core.cycles", ce.cycles, ca.cycles);
    d.field("core.fetched", ce.fetched, ca.fetched);
    d.field("core.dispatched", ce.dispatched, ca.dispatched);
    d.field("core.issued", ce.issued, ca.issued);
    d.field("core.committed", ce.committed, ca.committed);
    d.field("core.squashed", ce.squashed, ca.squashed);
    d.field("core.mispredictSquashes", ce.mispredictSquashes,
            ca.mispredictSquashes);
    d.field("core.loadsForwarded", ce.loadsForwarded,
            ca.loadsForwarded);
    d.field("core.windowFullStalls", ce.windowFullStalls,
            ca.windowFullStalls);
    d.field("core.issueLimitedCycles", ce.issueLimitedCycles,
            ca.issueLimitedCycles);
    d.field("core.readyOpsSum", ce.readyOpsSum, ca.readyOpsSum);

    const GatingStats &ge = expected.gating, &ga = actual.gating;
    d.field("gating.ops", ge.ops, ga.ops);
    d.field("gating.gated16", ge.gated16, ga.gated16);
    d.field("gating.gated33", ge.gated33, ga.gated33);
    d.field("gating.gatedLoadSourced", ge.gatedLoadSourced,
            ga.gatedLoadSourced);
    d.field("gating.blockedByLoad", ge.blockedByLoad,
            ga.blockedByLoad);
    d.field("gating.baselineMwSum", ge.baselineMwSum,
            ga.baselineMwSum);
    d.field("gating.gatedMwSum", ge.gatedMwSum, ga.gatedMwSum);
    d.field("gating.overheadMwSum", ge.overheadMwSum,
            ga.overheadMwSum);
    d.field("gating.saved16MwSum", ge.saved16MwSum, ga.saved16MwSum);
    d.field("gating.saved33MwSum", ge.saved33MwSum, ga.saved33MwSum);

    const PackingStats &pe = expected.packing, &pa = actual.packing;
    d.field("packing.packedGroups", pe.packedGroups, pa.packedGroups);
    d.field("packing.packedInsts", pe.packedInsts, pa.packedInsts);
    d.field("packing.replaySpeculations", pe.replaySpeculations,
            pa.replaySpeculations);
    d.field("packing.replayTraps", pe.replayTraps, pa.replayTraps);
    d.field("packing.packEligibleIssued", pe.packEligibleIssued,
            pa.packEligibleIssued);

    const BPredStats &be = expected.bpred, &ba = actual.bpred;
    d.field("bpred.lookups", be.lookups, ba.lookups);
    d.field("bpred.condLookups", be.condLookups, ba.condLookups);
    d.field("bpred.condDirectionWrong", be.condDirectionWrong,
            ba.condDirectionWrong);
    d.field("bpred.targetWrong", be.targetWrong, ba.targetWrong);

    const WidthProfilerSnapshot we = expected.profiler.snapshot();
    const WidthProfilerSnapshot wa = actual.profiler.snapshot();
    d.field("profiler.opCount", we.opCount, wa.opCount);
    for (size_t i = 0; i < we.widthHist.size(); ++i) {
        d.field("profiler.widthHist[" + std::to_string(i) + "]",
                we.widthHist[i], wa.widthHist[i]);
    }
    for (size_t i = 0; i < we.narrow16ByCat.size(); ++i) {
        d.field("profiler.narrow16ByCat[" + std::to_string(i) + "]",
                we.narrow16ByCat[i], wa.narrow16ByCat[i]);
    }
    for (size_t i = 0; i < we.narrow33ByCat.size(); ++i) {
        d.field("profiler.narrow33ByCat[" + std::to_string(i) + "]",
                we.narrow33ByCat[i], wa.narrow33ByCat[i]);
    }
    d.field("profiler.pcWidthSeen.size", we.pcWidthSeen.size(),
            wa.pcWidthSeen.size());
    if (we.pcWidthSeen.size() == wa.pcWidthSeen.size()) {
        for (size_t i = 0; i < we.pcWidthSeen.size(); ++i) {
            char label[48];
            std::snprintf(label, sizeof(label),
                          "profiler.pcWidthSeen[0x%llx]",
                          static_cast<unsigned long long>(
                              we.pcWidthSeen[i].first));
            d.field(label + std::string(".pc"), we.pcWidthSeen[i].first,
                    wa.pcWidthSeen[i].first);
            d.field(label + std::string(".bits"),
                    static_cast<u64>(we.pcWidthSeen[i].second),
                    static_cast<u64>(wa.pcWidthSeen[i].second));
        }
    }

    d.field("l1dMissRate", expected.l1dMissRate, actual.l1dMissRate);
    d.field("l1iMissRate", expected.l1iMissRate, actual.l1iMissRate);

    const SampleSummary &se = expected.sample, &sa = actual.sample;
    d.field("sample.sampled", static_cast<u64>(se.sampled),
            static_cast<u64>(sa.sampled));
    d.field("sample.intervals", se.intervals, sa.intervals);
    d.field("sample.streamInsts", se.streamInsts, sa.streamInsts);
    for (size_t m = 0; m < SampleSummary::kNumMetrics; ++m) {
        const std::string p = "sample.metrics[" + std::to_string(m) +
                              "].";
        d.field(p + "mean", se.metrics[m].mean, sa.metrics[m].mean);
        d.field(p + "cov", se.metrics[m].cov, sa.metrics[m].cov);
        d.field(p + "ci95", se.metrics[m].ci95, sa.metrics[m].ci95);
    }

    return d.result();
}

} // namespace nwsim::test

#endif // NWSIM_TESTS_STAT_DIFF_HH
