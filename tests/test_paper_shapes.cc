/**
 * Shape-regression tests: lock in the paper's headline result shapes
 * on a reduced measurement window, so a future change that silently
 * destroys a reproduction (for example a width-tag regression) fails
 * CI rather than only being visible in bench output.
 *
 * Windows are small (5k warmup + 40k measured per run), so bounds are
 * generous; the benches measure the full-precision values.
 */

#include <gtest/gtest.h>

#include "driver/presets.hh"
#include "driver/runner.hh"
#include "workloads/kernels.hh"

namespace nwsim
{
namespace
{

RunOptions
shortWindow()
{
    RunOptions opts;
    opts.warmupInsts = 5000;
    opts.measureInsts = 40000;
    return opts;
}

RunResult
quickRun(const std::string &workload, const CoreConfig &cfg)
{
    return runProgram(workloadByName(workload).program(), cfg,
                      shortWindow(), workload, "shape");
}

TEST(PaperShapes, Figure1NarrowFractionAndAddressJump)
{
    // Paper: ~50% of spec int ops narrow at 16 bits; big jump at 33.
    double at16_sum = 0, jump_sum = 0;
    const char *bench[] = {"ijpeg", "compress", "go", "gcc"};
    for (const char *name : bench) {
        const RunResult r = quickRun(name, presets::baseline());
        at16_sum += r.profiler.cumulativePercent(16);
        jump_sum += r.profiler.cumulativePercent(33) -
                    r.profiler.cumulativePercent(32);
    }
    EXPECT_GT(at16_sum / 4, 35.0);
    EXPECT_LT(at16_sum / 4, 85.0);
    EXPECT_GT(jump_sum / 4, 10.0);
}

TEST(PaperShapes, Figure7PowerReductionBand)
{
    // Paper: 54.1% (spec) / 57.9% (media) integer-unit power reduction.
    const RunResult spec = quickRun("ijpeg", presets::baseline());
    const RunResult media = quickRun("gsm-encode", presets::baseline());
    EXPECT_GT(spec.gating.reductionPercent(), 40.0);
    EXPECT_LT(spec.gating.reductionPercent(), 80.0);
    EXPECT_GT(media.gating.reductionPercent(), 45.0);
    EXPECT_LT(media.gating.reductionPercent(), 85.0);
}

TEST(PaperShapes, Figure6NetSavingsPositive)
{
    for (const char *name : {"go", "vortex", "g721decode"}) {
        const RunResult r = quickRun(name, presets::baseline());
        EXPECT_GT(r.gating.netSavedMwSum(), 0.0) << name;
        // Zero-detect/mux overhead never exceeds the savings.
        EXPECT_LT(r.gating.overheadMwSum,
                  r.gating.saved16MwSum + r.gating.saved33MwSum)
            << name;
    }
}

TEST(PaperShapes, GsmHasNarrowMultiplies)
{
    // Paper: multiplies account for ~6% of gsm's narrow operations.
    const RunResult r = quickRun("gsm-encode", presets::baseline());
    EXPECT_GT(r.profiler.narrow16Percent(WidthCategory::Multiply), 1.0);
}

TEST(PaperShapes, PackingPacksMoreOnMediaThanNothing)
{
    const RunResult r = quickRun("mpeg2encode", presets::packing(true));
    EXPECT_GT(r.packing.packedInsts, 5000u);
    // Packed instructions never exceed lanes * groups.
    EXPECT_LE(r.packing.packedInsts, 4 * r.packing.packedGroups);
}

TEST(PaperShapes, EightWideDecodeRaisesPackingSpeedup)
{
    // Paper Section 5.4: wider decode -> more packing opportunity.
    // go shows it strongest in our suite.
    const CoreConfig b4 = presets::baseline();
    const CoreConfig p4 = presets::packing(true);
    const CoreConfig b8 = presets::decode8(presets::baseline());
    const CoreConfig p8 = presets::decode8(presets::packing(true));
    const double s4 =
        speedupPercent(quickRun("go", b4), quickRun("go", p4));
    const double s8 =
        speedupPercent(quickRun("go", b8), quickRun("go", p8));
    EXPECT_GT(s8, s4);
    EXPECT_GT(s8, 5.0);
}

TEST(PaperShapes, ReplayTrapRateIsSmall)
{
    // Section 5.3: overflow into the upper bits "happens relatively
    // infrequently" — traps must be a small fraction of speculations.
    for (const char *name : {"li", "vortex", "gcc"}) {
        const RunResult r = quickRun(name, presets::packing(true));
        if (r.packing.replaySpeculations > 100) {
            EXPECT_LT(r.packing.replayTraps,
                      r.packing.replaySpeculations / 4)
                << name;
        }
    }
}

} // namespace
} // namespace nwsim
