/** Unit tests for the combining predictor, BTB, and RAS. */

#include <gtest/gtest.h>

#include "bpred/combining.hh"
#include "common/rng.hh"

namespace nwsim
{
namespace
{

Inst
condBranch(i64 disp = 4)
{
    Inst i;
    i.op = Opcode::BNE;
    i.ra = 1;
    i.disp = disp;
    return i;
}

/** Drive one static branch through predict/resolve with an outcome. */
bool
predictAndTrain(CombiningPredictor &bp, Addr pc, const Inst &inst,
                bool taken)
{
    const Prediction pred = bp.predict(pc, inst);
    const Addr target = taken ? inst.branchTarget(pc) : pc + 4;
    if (pred.taken != taken)
        bp.repair(inst, pred, taken);
    bp.resolve(pc, inst, pred, taken, target);
    return pred.taken == taken;
}

TEST(Bpred, LearnsAlwaysTaken)
{
    CombiningPredictor bp{BPredConfig{}};
    const Inst b = condBranch();
    int correct = 0;
    for (int i = 0; i < 100; ++i)
        correct += predictAndTrain(bp, 0x1000, b, true);
    EXPECT_GT(correct, 95);
}

TEST(Bpred, LearnsAlternatingPatternViaLocalHistory)
{
    CombiningPredictor bp{BPredConfig{}};
    const Inst b = condBranch();
    // T,N,T,N...: global/local history predictors handle this exactly.
    int correct_late = 0;
    for (int i = 0; i < 300; ++i) {
        const bool taken = (i % 2) == 0;
        const bool ok = predictAndTrain(bp, 0x2000, b, taken);
        if (i >= 200)
            correct_late += ok;
    }
    EXPECT_GT(correct_late, 95);
}

TEST(Bpred, LearnsLoopExitPattern)
{
    CombiningPredictor bp{BPredConfig{}};
    const Inst b = condBranch(-8);
    // 7 taken then 1 not-taken, repeatedly (8-iteration loop): within
    // the 10-bit local history, should become near-perfect.
    int correct_late = 0, total_late = 0;
    for (int round = 0; round < 120; ++round) {
        for (int i = 0; i < 8; ++i) {
            const bool taken = i != 7;
            const bool ok = predictAndTrain(bp, 0x3000, b, taken);
            if (round >= 80) {
                correct_late += ok;
                ++total_late;
            }
        }
    }
    EXPECT_GT(correct_late, total_late * 9 / 10);
}

TEST(Bpred, MispredictStatsCount)
{
    CombiningPredictor bp{BPredConfig{}};
    const Inst b = condBranch();
    u64 flips = 0;
    SplitMix64 rng(4);
    for (int i = 0; i < 500; ++i) {
        predictAndTrain(bp, 0x9000, b, rng.below(2) != 0);
        ++flips;
    }
    EXPECT_EQ(bp.stats().condLookups, flips);
    // Random directions: mispredict rate should be substantial.
    EXPECT_GT(bp.stats().condDirectionWrong, 100u);
}

TEST(Bpred, UnconditionalBranchHasKnownTarget)
{
    CombiningPredictor bp{BPredConfig{}};
    Inst br;
    br.op = Opcode::BR;
    br.disp = 16;
    const Prediction p = bp.predict(0x4000, br);
    EXPECT_TRUE(p.taken);
    EXPECT_EQ(p.target, 0x4000u + 4 + 16 * 4);
}

TEST(Bpred, IndirectJumpUsesBtb)
{
    CombiningPredictor bp{BPredConfig{}};
    Inst jmp;
    jmp.op = Opcode::JMP;
    jmp.rb = 2;
    // Cold: predicts fall-through.
    Prediction p = bp.predict(0x5000, jmp);
    EXPECT_EQ(p.target, 0x5004u);
    bp.resolve(0x5000, jmp, p, true, 0x7777000);
    // Warm: predicts the trained target.
    p = bp.predict(0x5000, jmp);
    EXPECT_EQ(p.target, 0x7777000u);
}

TEST(Bpred, RasPredictsReturns)
{
    CombiningPredictor bp{BPredConfig{}};
    Inst jsr;
    jsr.op = Opcode::JSR;
    jsr.rc = raReg;
    jsr.rb = 3;
    Inst ret;
    ret.op = Opcode::RET;
    ret.rb = raReg;

    // Call at 0x6000 pushes 0x6004; nested call at 0x6100 pushes 0x6104.
    bp.predict(0x6000, jsr);
    bp.predict(0x6100, jsr);
    Prediction p = bp.predict(0x8000, ret);
    EXPECT_EQ(p.target, 0x6104u);
    p = bp.predict(0x8010, ret);
    EXPECT_EQ(p.target, 0x6004u);
}

TEST(Bpred, BranchAndLinkPushesRas)
{
    CombiningPredictor bp{BPredConfig{}};
    Inst bsr;
    bsr.op = Opcode::BR;
    bsr.rc = raReg;
    bsr.disp = 100;
    Inst ret;
    ret.op = Opcode::RET;
    ret.rb = raReg;
    bp.predict(0xa000, bsr);
    const Prediction p = bp.predict(0xb000, ret);
    EXPECT_EQ(p.target, 0xa004u);
}

TEST(Bpred, RepairRestoresSpeculativeState)
{
    CombiningPredictor bp{BPredConfig{}};
    const Inst b = condBranch();
    const u64 hist0 = bp.globalHistory();
    const Prediction p1 = bp.predict(0x1000, b);
    EXPECT_NE(bp.globalHistory(), (hist0 << 1) | (p1.taken ? 0 : 1));
    // Mispredict: repair re-installs checkpoint + actual outcome.
    bp.repair(b, p1, !p1.taken);
    EXPECT_EQ(bp.globalHistory(), (hist0 << 1) | (p1.taken ? 0 : 1));
}

TEST(Ras, CheckpointRestoreAcrossOverflow)
{
    Ras ras(4);
    for (Addr a = 0x100; a < 0x100 + 6 * 4; a += 4)
        ras.push(a);
    const Ras::Checkpoint cp = ras.checkpoint();
    const Addr top = ras.pop();
    ras.push(0xdead);
    ras.restore(cp);
    EXPECT_EQ(ras.pop(), top);
}

TEST(Btb, TwoWaySetsEvictLru)
{
    Btb btb(4, 2);  // 2 sets x 2 ways; pcs stepping by 8 hit set 0/1.
    btb.update(0x00, 0xa);
    btb.update(0x08, 0xb);  // same set as 0x00 (index uses pc>>2)
    EXPECT_TRUE(btb.lookup(0x00).has_value());
    btb.update(0x10, 0xc);  // evicts 0x08 (LRU after 0x00 lookup)
    EXPECT_FALSE(btb.lookup(0x08).has_value());
    EXPECT_EQ(btb.lookup(0x00).value(), 0xau);
    EXPECT_EQ(btb.lookup(0x10).value(), 0xcu);
}

} // namespace
} // namespace nwsim
