/**
 * Tests of the checking subsystem (src/check): the lockstep cosim
 * oracle must hold on correct pipelines and pin the first divergence on
 * broken ones; every invariant class must both evaluate on healthy runs
 * (no vacuous coverage) and fire on deliberately corrupted events (no
 * silent-pass checker); and the nwfuzz engine must catch an injected
 * fault and shrink it to a small reproducer.
 */

#include "sim_test_util.hh"

#include "check/fuzz.hh"
#include "check/session.hh"
#include "core/packing.hh"
#include "driver/presets.hh"

namespace nwsim
{
namespace
{

using test::buildProgram;

/**
 * A program that exercises every invariant class at once under
 * packing-replay: strict packed groups (narrow addi storm), replay
 * speculation (addi on a 33-bit la base), loads and stores through the
 * LSQ, and plenty of narrow-operand value ops for gating transparency.
 */
Program
fullCoverageLoop(unsigned iters)
{
    return buildProgram([iters](Assembler &as) {
        as.la(16, "blob");
        as.li(17, static_cast<i64>(iters));
        as.label("loop");
        as.beq(17, "done");
        for (unsigned i = 0; i < 8; ++i)
            as.addi(static_cast<RegIndex>(1 + i % 6), zeroReg,
                    static_cast<i64>((i * 37) & 0x3fff));
        for (unsigned i = 0; i < 8; ++i)
            as.addi(static_cast<RegIndex>(7 + i % 2), 16,
                    static_cast<i64>((i * 8) & 0xff));
        as.ldq(9, 0, 16);
        as.add(9, 9, 1);
        as.stq(9, 0, 16);
        as.ldq(10, 8, 16);
        as.subi(17, 17, 1);
        as.br("loop");
        as.label("done");
        as.halt();
        as.dataLabel("blob");
        as.dataZeros(64);
    });
}

struct CheckedRun
{
    std::unique_ptr<SparseMemory> mem;
    std::unique_ptr<OutOfOrderCore> core;
    std::unique_ptr<CheckSession> session;
};

CheckedRun
runWithChecks(const Program &prog, const CoreConfig &cfg,
              const Program *golden = nullptr)
{
    CheckedRun r;
    r.mem = std::make_unique<SparseMemory>();
    prog.load(*r.mem);
    r.core = std::make_unique<OutOfOrderCore>(cfg, *r.mem, prog.entry);
    r.session = std::make_unique<CheckSession>(
        *r.core, golden ? *golden : prog);
    r.core->run(1'000'000);
    return r;
}

TEST(Cosim, LockstepHoldsAcrossConfigs)
{
    const Program prog = fullCoverageLoop(200);
    const CoreConfig configs[] = {
        presets::baseline(),
        presets::packing(false),
        presets::packing(true),
        presets::decode8(presets::packing(true)),
    };
    for (const CoreConfig &cfg : configs) {
        auto r = runWithChecks(prog, cfg);
        EXPECT_TRUE(r.core->done());
        EXPECT_FALSE(r.session->failed()) << r.session->report();
        EXPECT_TRUE(r.session->verifyFinalState())
            << r.session->report();
        EXPECT_EQ(r.session->oracle()->commitsChecked(),
                  r.core->stats().committed);
    }
}

TEST(Cosim, EveryInvariantClassEvaluatesOnHealthyRun)
{
    // Coverage guard: a checker that never evaluates a class would
    // pass everything vacuously.
    const Program prog = fullCoverageLoop(300);
    auto r = runWithChecks(prog, presets::packing(true));
    ASSERT_TRUE(r.core->done());
    EXPECT_FALSE(r.session->failed()) << r.session->report();
    EXPECT_GT(r.core->packingStats().packedGroups, 0u);
    EXPECT_GT(r.core->packingStats().replaySpeculations, 0u);
    const InvariantChecker &inv = *r.session->invariants();
    for (size_t c = 0; c < numInvariantClasses; ++c) {
        const auto cls = static_cast<InvariantClass>(c);
        EXPECT_GT(inv.checked(cls), 0u) << invariantClassName(cls);
        EXPECT_EQ(inv.fired(cls), 0u) << invariantClassName(cls);
    }
}

TEST(Cosim, PinsFirstDivergenceToTheDifferingInstruction)
{
    // The core executes `addi r1, r31, 5`, the golden model expects
    // `addi r1, r31, 6`: the oracle must flag commit #1, not report an
    // end-of-run register diff.
    const Program run_prog = buildProgram([](Assembler &as) {
        as.addi(1, zeroReg, 5);
        as.addi(2, zeroReg, 7);
        as.halt();
    });
    const Program golden = buildProgram([](Assembler &as) {
        as.addi(1, zeroReg, 6);
        as.addi(2, zeroReg, 7);
        as.halt();
    });
    auto r = runWithChecks(run_prog, presets::baseline(), &golden);
    ASSERT_TRUE(r.session->failed());
    const Divergence &d = r.session->oracle()->divergence();
    EXPECT_EQ(d.kind, DivergenceKind::Instruction);
    EXPECT_EQ(d.commitIndex, 1u);
    EXPECT_NE(r.session->report().find("divergence"), std::string::npos);
}

TEST(Cosim, FinalStateCatchesSilentRegisterDiff)
{
    // Same instruction stream length, one differing destination value:
    // caught at the diverging commit, and report names the register
    // value mismatch.
    const Program run_prog = buildProgram([](Assembler &as) {
        as.li(4, 0x1234);
        as.halt();
    });
    const Program golden = buildProgram([](Assembler &as) {
        as.li(4, 0x1235);
        as.halt();
    });
    auto r = runWithChecks(run_prog, presets::baseline(), &golden);
    EXPECT_TRUE(r.session->failed());
}

// ---------------------------------------------------------------------
// Seeded fault injection against the invariant checker itself: corrupt
// one pipeline event per class and require the matching class to fire.
// ---------------------------------------------------------------------

class InvariantFire : public ::testing::Test
{
  protected:
    InvariantFire()
    {
        prog = buildProgram([](Assembler &as) { as.halt(); });
        prog.load(mem);
        core = std::make_unique<OutOfOrderCore>(
            presets::packing(true), mem, prog.entry);
        checker = std::make_unique<InvariantChecker>(*core);
    }

    /** A healthy committed add: every onCommit check passes on it. */
    static RuuEntry
    healthyAdd(InstSeq seq)
    {
        RuuEntry e;
        e.seq = seq;
        e.pc = 0x10000 + 4 * seq;
        e.inst.op = Opcode::ADD;
        e.inst.ra = 1;
        e.inst.rb = 2;
        e.inst.rc = 3;
        e.state = EntryState::Completed;
        e.valA = 5;
        e.valB = 7;
        e.result = 12;
        return e;
    }

    Program prog;
    SparseMemory mem;
    std::unique_ptr<OutOfOrderCore> core;
    std::unique_ptr<InvariantChecker> checker;
};

TEST_F(InvariantFire, CommitOrderFiresOnReorderedSeq)
{
    checker->onCommit(healthyAdd(5));
    EXPECT_TRUE(checker->clean());
    checker->onCommit(healthyAdd(5)); // not strictly increasing
    EXPECT_GT(checker->fired(InvariantClass::CommitOrder), 0u);
}

TEST_F(InvariantFire, CommitOrderFiresOnIncompleteEntry)
{
    RuuEntry e = healthyAdd(1);
    e.state = EntryState::Issued;
    checker->onCommit(e);
    EXPECT_GT(checker->fired(InvariantClass::CommitOrder), 0u);
}

TEST_F(InvariantFire, LsqOrderFiresOnInconsistentEffectiveAddress)
{
    RuuEntry e = healthyAdd(1);
    e.inst.op = Opcode::LDQ;
    e.inst.imm = 8;
    e.isMem = true;
    e.valA = 0x1000;
    e.effAddr = 0x2000; // should be 0x1008
    e.memSize = 8;
    checker->onCommit(e);
    EXPECT_GT(checker->fired(InvariantClass::LsqOrder), 0u);
}

TEST_F(InvariantFire, LsqOrderFiresOnCorruptedStoreData)
{
    RuuEntry e = healthyAdd(1);
    e.inst.op = Opcode::STQ;
    e.inst.imm = 0;
    e.isMem = true;
    e.isSt = true;
    e.valA = 0x1000;
    e.valB = 0xbeef;
    e.effAddr = 0x1000;
    e.memSize = 8;
    e.storeData = 0xdead; // lane corrupted: != rb operand
    checker->onCommit(e);
    EXPECT_GT(checker->fired(InvariantClass::LsqOrder), 0u);
}

TEST_F(InvariantFire, PackLegalityFiresOnCorruptedLaneResult)
{
    RuuEntry a = healthyAdd(1);
    RuuEntry b = healthyAdd(2);
    a.packed = b.packed = true;
    b.result = 13; // corrupt lane: 5 + 7 != 13
    const std::vector<const RuuEntry *> group = {&a, &b};
    checker->onPackedGroup(group);
    EXPECT_GT(checker->fired(InvariantClass::PackLegality), 0u);
}

TEST_F(InvariantFire, PackLegalityFiresOnMixedOperationGroup)
{
    RuuEntry a = healthyAdd(1);
    RuuEntry b = healthyAdd(2);
    a.packed = b.packed = true;
    b.inst.op = Opcode::XOR; // different op in one group
    b.result = 5 ^ 7;
    const std::vector<const RuuEntry *> group = {&a, &b};
    checker->onPackedGroup(group);
    EXPECT_GT(checker->fired(InvariantClass::PackLegality), 0u);
}

TEST_F(InvariantFire, PackLegalityFiresOnWideLane)
{
    RuuEntry a = healthyAdd(1);
    RuuEntry b = healthyAdd(2);
    a.packed = b.packed = true;
    // Both operands wide: neither the strict rule nor the replay rule
    // allows this lane.
    b.valA = u64{1} << 40;
    b.valB = u64{1} << 41;
    b.result = b.valA + b.valB;
    const std::vector<const RuuEntry *> group = {&a, &b};
    checker->onPackedGroup(group);
    EXPECT_GT(checker->fired(InvariantClass::PackLegality), 0u);
}

TEST_F(InvariantFire, ReplayCompletenessFiresOnMissedTrap)
{
    // 0xff00 + 0x200 carries out of the low 16 bits, so a packed
    // replay lane would be wrong: claiming "no trap" must fire.
    RuuEntry e = healthyAdd(1);
    e.inst.op = Opcode::ADDI;
    e.inst.imm = 0x200;
    e.valA = (u64{1} << 32) + 0xff00;
    e.result = e.valA + 0x200;
    ASSERT_TRUE(replayWouldTrap(e.inst, e.opA(), e.opB(), e.pc));
    checker->onReplayDecision(e, /*trapped=*/false);
    EXPECT_GT(checker->fired(InvariantClass::ReplayCompleteness), 0u);
}

TEST_F(InvariantFire, ReplayCompletenessFiresOnSpuriousTrap)
{
    RuuEntry e = healthyAdd(1);
    e.inst.op = Opcode::ADDI;
    e.inst.imm = 4;
    e.valA = (u64{1} << 32) + 0x10;
    e.result = e.valA + 4;
    ASSERT_FALSE(replayWouldTrap(e.inst, e.opA(), e.opB(), e.pc));
    checker->onReplayDecision(e, /*trapped=*/true);
    EXPECT_GT(checker->fired(InvariantClass::ReplayCompleteness), 0u);
}

TEST_F(InvariantFire, GatingTransparencyFiresOnCorruptedNarrowResult)
{
    RuuEntry e = healthyAdd(1);
    e.result = 999; // gated datapath would produce 12
    checker->onCommit(e);
    EXPECT_GT(checker->fired(InvariantClass::GatingTransparency), 0u);
}

TEST_F(InvariantFire, ReportNamesTheFiringClass)
{
    checker->onCommit(healthyAdd(3));
    checker->onCommit(healthyAdd(2));
    EXPECT_FALSE(checker->clean());
    EXPECT_NE(checker->report().find("commit-order"), std::string::npos);
}

// ---------------------------------------------------------------------
// nwfuzz engine
// ---------------------------------------------------------------------

TEST(Fuzz, GenerationIsDeterministic)
{
    const FuzzCase a = generateFuzzCase(1234);
    const FuzzCase b = generateFuzzCase(1234);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    EXPECT_EQ(fuzzProgramText(a, false), fuzzProgramText(b, false));
    const FuzzCase c = generateFuzzCase(1235);
    EXPECT_NE(fuzzProgramText(a, false), fuzzProgramText(c, false));
}

TEST(Fuzz, CleanSeedsPassTheWholeMatrix)
{
    const auto matrix = fuzzConfigMatrix();
    ASSERT_EQ(matrix.size(), 8u);
    for (u64 seed = 1; seed <= 4; ++seed) {
        const FuzzCase fc = generateFuzzCase(seed);
        const auto failure = runFuzzCase(fc, matrix);
        EXPECT_FALSE(failure.has_value())
            << "seed " << seed << " failed on " << failure->configName
            << ":\n"
            << failure->report;
    }
}

TEST(Fuzz, InjectedFaultIsCaughtAndShrinksSmall)
{
    const auto matrix = fuzzConfigMatrix();
    FuzzCase fc = generateFuzzCase(42);
    markInjectedFault(fc, 42);
    ASSERT_TRUE(fuzzCaseHasFault(fc));

    const auto failure = runFuzzCase(fc, matrix);
    ASSERT_TRUE(failure.has_value()) << "injected fault not caught";

    const ShrinkOutcome shrunk = shrinkFuzzCase(fc, matrix);
    EXPECT_TRUE(fuzzCaseHasFault(shrunk.minimized));
    EXPECT_LE(shrunk.minimized.ops.size(), fc.ops.size());
    EXPECT_LE(fuzzCaseInstCount(shrunk.minimized), 32u);
    // The minimized case must still reproduce.
    EXPECT_TRUE(runFuzzCase(shrunk.minimized, matrix).has_value());
}

TEST(Fuzz, ReproducerTextRoundTripsThroughTheAssembler)
{
    const FuzzCase fc = generateFuzzCase(7);
    const Program p = materializeFuzzCase(fc);
    EXPECT_GT(fuzzCaseInstCount(fc), fc.ops.size());
    SparseMemory mem;
    p.load(mem);
    FuncSim sim(mem, p.entry);
    sim.run(1'000'000);
    EXPECT_TRUE(sim.halted());
}

} // namespace
} // namespace nwsim
