/** Unit tests for sparse memory, caches, TLBs, and the hierarchy. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/memsystem.hh"
#include "mem/sparse_memory.hh"

namespace nwsim
{
namespace
{

TEST(SparseMemory, ReadsAreZeroAndNonAllocating)
{
    SparseMemory mem;
    EXPECT_EQ(mem.read(0x1234, 8), 0u);
    EXPECT_EQ(mem.read(~u64{0} - 7, 8), 0u);    // wild wrong-path address
    EXPECT_EQ(mem.numPages(), 0u);
}

TEST(SparseMemory, WriteReadRoundTrip)
{
    SparseMemory mem;
    mem.write(0x1000, 8, 0x0102030405060708ULL);
    EXPECT_EQ(mem.read(0x1000, 8), 0x0102030405060708ULL);
    EXPECT_EQ(mem.read(0x1000, 4), 0x05060708u);
    EXPECT_EQ(mem.read(0x1000, 2), 0x0708u);
    EXPECT_EQ(mem.read(0x1000, 1), 0x08u);
    EXPECT_EQ(mem.read(0x1004, 4), 0x01020304u);
}

TEST(SparseMemory, CrossPageAccess)
{
    SparseMemory mem;
    const Addr edge = SparseMemory::pageSize - 4;
    mem.write(edge, 8, 0xaabbccdd11223344ULL);
    EXPECT_EQ(mem.read(edge, 8), 0xaabbccdd11223344ULL);
    EXPECT_EQ(mem.numPages(), 2u);
}

TEST(SparseMemory, BlockCopy)
{
    SparseMemory mem;
    const char msg[] = "narrow width operands";
    mem.writeBlock(0x5000, msg, sizeof(msg));
    char back[sizeof(msg)];
    mem.readBlock(0x5000, back, sizeof(msg));
    EXPECT_STREQ(back, msg);
}

TEST(Cache, HitAfterMiss)
{
    Cache cache({"t", 1024, 2, 32, 1});
    EXPECT_FALSE(cache.access(0x100));
    EXPECT_TRUE(cache.access(0x100));
    EXPECT_TRUE(cache.access(0x11f));   // same 32B block
    EXPECT_FALSE(cache.access(0x120));  // next block
    EXPECT_EQ(cache.stats().accesses, 4u);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(Cache, LruEviction)
{
    // 2-way, 2 sets of 32B blocks: addresses mapping to set 0 are
    // multiples of 64.
    Cache cache({"t", 128, 2, 32, 1});
    EXPECT_FALSE(cache.access(0));      // set 0, way A
    EXPECT_FALSE(cache.access(64));     // set 0, way B
    EXPECT_TRUE(cache.access(0));       // refresh A
    EXPECT_FALSE(cache.access(128));    // evicts 64 (LRU)
    EXPECT_TRUE(cache.access(0));
    EXPECT_FALSE(cache.access(64));     // was evicted
}

TEST(Cache, ProbeAndFlush)
{
    Cache cache({"t", 1024, 2, 32, 1});
    cache.access(0x40);
    EXPECT_TRUE(cache.probe(0x40));
    EXPECT_FALSE(cache.probe(0x80));
    cache.flush();
    EXPECT_FALSE(cache.probe(0x40));
}

TEST(Tlb, MissThenHitAndLru)
{
    Tlb tlb({"t", 2, 12, 30});
    EXPECT_EQ(tlb.access(0x1000), 30u);
    EXPECT_EQ(tlb.access(0x1fff), 0u);      // same page
    EXPECT_EQ(tlb.access(0x2000), 30u);
    EXPECT_EQ(tlb.access(0x1000), 0u);      // refresh
    EXPECT_EQ(tlb.access(0x3000), 30u);     // evicts 0x2000
    EXPECT_EQ(tlb.access(0x2000), 30u);
}

TEST(MemSystem, Table1Latencies)
{
    MemSystem ms{MemSystemConfig{}};
    // Cold access: TLB miss (30) + L1 miss (1) + L2 miss (12) + mem (100).
    EXPECT_EQ(ms.dataLatency(0x10000), 30u + 1 + 12 + 100);
    // Warm: L1 hit, TLB hit.
    EXPECT_EQ(ms.dataLatency(0x10000), 1u);
    // Same page, adjacent block: TLB hit; the L2 also has 32B blocks,
    // so both caches miss to memory.
    EXPECT_EQ(ms.dataLatency(0x10020), 1u + 12 + 100);
    // Instruction side has its own L1/TLB, but the unified L2 already
    // holds the block the data side fetched.
    EXPECT_EQ(ms.instLatency(0x10000), 30u + 1 + 12);
    EXPECT_EQ(ms.instLatency(0x10000), 1u);
    ms.flush();
    EXPECT_EQ(ms.dataLatency(0x10000), 30u + 1 + 12 + 100);
}

TEST(MemSystem, L2SharedBetweenInstAndData)
{
    MemSystem ms{MemSystemConfig{}};
    ms.instLatency(0x40000);                // fills L2 with the block
    // Data access to the same block: TLB miss + L1D miss + L2 *hit*.
    EXPECT_EQ(ms.dataLatency(0x40000), 30u + 1 + 12);
}

/** Property sweep: random access strings keep stats consistent. */
class CacheProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CacheProperty, MissesNeverExceedAccesses)
{
    SplitMix64 rng(GetParam());
    Cache cache({"t", 4096, GetParam(), 32, 1});
    u64 rehits = 0;
    for (int i = 0; i < 5000; ++i) {
        const Addr a = rng.below(1 << 16);
        cache.access(a);
        if (cache.probe(a))
            ++rehits;
    }
    EXPECT_EQ(rehits, 5000u);   // just-filled blocks always present
    EXPECT_LE(cache.stats().misses, cache.stats().accesses);
    EXPECT_GT(cache.stats().misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(Assocs, CacheProperty,
                         ::testing::Values(1u, 2u, 4u, 8u));

} // namespace
} // namespace nwsim
