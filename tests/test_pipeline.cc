/**
 * Integration tests of the out-of-order pipeline against the functional
 * golden model, plus targeted timing-behaviour checks.
 */

#include "sim_test_util.hh"

#include "driver/presets.hh"

namespace nwsim
{
namespace
{

using test::buildProgram;
using test::runDifferential;

TEST(Pipeline, StraightLine)
{
    const Program prog = buildProgram([](Assembler &as) {
        as.li(1, 10);
        as.li(2, 20);
        as.add(3, 1, 2);
        as.mul(4, 3, 3);
        as.subi(5, 4, 900);
        as.halt();
    });
    auto run = runDifferential(prog, presets::baseline());
    EXPECT_EQ(run.core->reg(4), 900u);
    EXPECT_EQ(run.core->reg(5), 0u);
}

TEST(Pipeline, LoopWithBranches)
{
    const Program prog = buildProgram([](Assembler &as) {
        as.li(1, 0);
        as.li(2, 500);
        as.label("loop");
        as.beq(2, "done");
        as.andi(3, 2, 1);
        as.beq(3, "even");
        as.add(1, 1, 2);        // odd: add
        as.br("next");
        as.label("even");
        as.sub(1, 1, 2);        // even: subtract
        as.label("next");
        as.subi(2, 2, 1);
        as.br("loop");
        as.label("done");
        as.halt();
    });
    runDifferential(prog, presets::baseline());
}

TEST(Pipeline, StoreToLoadForwarding)
{
    const Program prog = buildProgram([](Assembler &as) {
        as.la(4, "buf");
        as.li(1, 0);
        as.li(2, 200);
        as.label("loop");
        as.beq(2, "done");
        as.stq(2, 0, 4);
        as.ldq(3, 0, 4);        // must see the store just above
        as.add(1, 1, 3);
        as.stb(3, 8, 4);
        as.ldbu(5, 8, 4);       // partial-width forwarding
        as.add(1, 1, 5);
        as.subi(2, 2, 1);
        as.br("loop");
        as.label("done");
        as.halt();
        as.dataLabel("buf");
        as.dataZeros(16);
    });
    auto run = runDifferential(prog, presets::baseline());
    EXPECT_GT(run.core->stats().loadsForwarded, 0u);
}

TEST(Pipeline, PartialStoreOverlapsWideLoad)
{
    const Program prog = buildProgram([](Assembler &as) {
        as.la(4, "buf");
        as.li(1, -1);
        as.stq(1, 0, 4);        // buf = all ones
        as.li(2, 0);
        as.stb(2, 3, 4);        // clear byte 3
        as.stw(2, 6, 4);        // clear bytes 6..7
        as.ldq(3, 0, 4);        // must merge store bytes over memory
        as.halt();
        as.dataLabel("buf");
        as.dataQuad(0x1234567890abcdefULL);
    });
    auto run = runDifferential(prog, presets::baseline());
    // Little-endian bytes: ff ff ff 00 ff ff 00 00.
    EXPECT_EQ(run.core->reg(3), 0x0000ffff00ffffffULL);
}

TEST(Pipeline, CallReturnRecursion)
{
    const Program prog = buildProgram([](Assembler &as) {
        as.li(1, 12);
        as.call("fact");
        as.halt();
        // r2 = fact(r1) recursively, clobbers r1.
        as.label("fact");
        as.bgt(1, "recurse");
        as.li(2, 1);
        as.ret();
        as.label("recurse");
        as.subi(spReg, spReg, 16);
        as.stq(raReg, 0, spReg);
        as.stq(1, 8, spReg);
        as.subi(1, 1, 1);
        as.call("fact");
        as.ldq(1, 8, spReg);
        as.mul(2, 2, 1);
        as.ldq(raReg, 0, spReg);
        as.addi(spReg, spReg, 16);
        as.ret();
    });
    auto run = runDifferential(prog, presets::baseline());
    EXPECT_EQ(run.core->reg(2), 479001600u);    // 12!
}

TEST(Pipeline, DataDependentBranchesMispredict)
{
    // Pseudo-random branch directions: the predictor must actually
    // mispredict, and recovery must stay architecturally exact.
    const Program prog = buildProgram([](Assembler &as) {
        as.li(1, 0x1234);       // lfsr state
        as.li(2, 2000);         // iterations
        as.li(3, 0);            // accumulator
        as.label("loop");
        as.beq(2, "done");
        // lfsr step: bit = (s ^ s>>2 ^ s>>3 ^ s>>5) & 1; s = s>>1 | bit<<15
        as.srli(4, 1, 2);
        as.xor_(4, 4, 1);
        as.srli(5, 1, 3);
        as.xor_(4, 4, 5);
        as.srli(5, 1, 5);
        as.xor_(4, 4, 5);
        as.andi(4, 4, 1);
        as.srli(1, 1, 1);
        as.slli(5, 4, 15);
        as.or_(1, 1, 5);
        as.beq(4, "skip");
        as.addi(3, 3, 7);
        as.br("next");
        as.label("skip");
        as.addi(3, 3, 1);
        as.label("next");
        as.subi(2, 2, 1);
        as.br("loop");
        as.label("done");
        as.halt();
    });
    auto run = runDifferential(prog, presets::baseline());
    EXPECT_GT(run.core->stats().mispredictSquashes, 50u);
    EXPECT_GT(run.core->stats().squashed, 0u);
}

TEST(Pipeline, RarePathStoresStayExact)
{
    // A rarely-taken branch guards a store. The predictor will sometimes
    // speculate into/over it, executing the store (or skipping it) on
    // the wrong path; squash must keep memory architecturally exact.
    const Program prog = buildProgram([](Assembler &as) {
        as.la(4, "guard");
        as.li(2, 300);
        as.label("loop");
        as.beq(2, "done");
        as.andi(3, 2, 63);
        as.bne(3, "no_store");
        as.stq(2, 0, 4);        // executes only when (r2 & 63) == 0
        as.label("no_store");
        as.subi(2, 2, 1);
        as.br("loop");
        as.label("done");
        as.ldq(1, 0, 4);
        as.halt();
        as.dataLabel("guard");
        as.dataQuad(111);
    });
    auto run = runDifferential(prog, presets::baseline());
    // Counters 300..1: multiples of 64 stored are 256,192,128,64.
    EXPECT_EQ(run.core->reg(1), 64u);
}

TEST(Pipeline, PerfectPredictionNeverSquashes)
{
    const Program prog = buildProgram([](Assembler &as) {
        as.li(1, 0x9e37);
        as.li(2, 1500);
        as.li(3, 0);
        as.label("loop");
        as.beq(2, "done");
        as.andi(4, 1, 1);
        as.srli(1, 1, 1);
        as.beq(4, "skip");
        as.xori(1, 1, 0xb400);
        as.addi(3, 3, 1);
        as.label("skip");
        as.subi(2, 2, 1);
        as.br("loop");
        as.label("done");
        as.halt();
    });
    auto run = runDifferential(prog, presets::baseline(true));
    EXPECT_EQ(run.core->stats().mispredictSquashes, 0u);
    EXPECT_EQ(run.core->stats().squashed, 0u);
}

TEST(Pipeline, PerfectBeatsRealisticOnRandomBranches)
{
    auto build = [](Assembler &as) {
        as.li(1, 0xace1);
        as.li(2, 3000);
        as.li(3, 0);
        as.label("loop");
        as.beq(2, "done");
        as.srli(4, 1, 2);
        as.xor_(4, 4, 1);
        as.srli(5, 1, 3);
        as.xor_(4, 4, 5);
        as.andi(4, 4, 1);
        as.srli(1, 1, 1);
        as.slli(5, 4, 15);
        as.or_(1, 1, 5);
        as.beq(4, "skip");
        as.addi(3, 3, 3);
        as.label("skip");
        as.subi(2, 2, 1);
        as.br("loop");
        as.label("done");
        as.halt();
    };
    const Program prog = buildProgram(build);
    auto realistic = runDifferential(prog, presets::baseline(false));
    auto perfect = runDifferential(prog, presets::baseline(true));
    EXPECT_LT(perfect.core->stats().cycles,
              realistic.core->stats().cycles);
}

TEST(Pipeline, IndependentAddsReachIssueWidthIpc)
{
    // A long unrolled block of independent adds, looped so the I-cache
    // warms, should sustain close to 4 IPC on the 4-wide baseline.
    const Program prog = buildProgram([](Assembler &as) {
        as.li(15, 6);
        as.label("again");
        for (int i = 0; i < 2000; ++i)
            as.addi(static_cast<RegIndex>(1 + (i % 8)), zeroReg,
                    (i * 7) & 0x7ff);
        as.subi(15, 15, 1);
        as.bne(15, "again");
        as.halt();
    });
    auto run =
        runDifferential(prog, test::fastMemory(presets::baseline()));
    EXPECT_GT(run.core->stats().ipc(), 3.4);
}

TEST(Pipeline, DependentChainIsSerialized)
{
    const Program prog = buildProgram([](Assembler &as) {
        as.li(1, 0);
        for (int i = 0; i < 1000; ++i)
            as.addi(1, 1, 1);
        as.halt();
    });
    auto run =
        runDifferential(prog, test::fastMemory(presets::baseline()));
    EXPECT_EQ(run.core->reg(1), 1000u);
    // A dependent chain can't beat ~1 IPC.
    EXPECT_LT(run.core->stats().ipc(), 1.2);
    EXPECT_GT(run.core->stats().ipc(), 0.75);
}

TEST(Pipeline, UnpipelinedDivideStallsIssue)
{
    const Program divs = buildProgram([](Assembler &as) {
        as.li(1, 1000000);
        as.li(2, 3);
        for (int i = 0; i < 50; ++i)
            as.div(3, 1, 2);    // independent but one unpipelined unit
        as.halt();
    });
    auto run = runDifferential(divs, presets::baseline());
    // 50 divides at ~20 cycles on one unpipelined unit: >= ~1000 cycles.
    EXPECT_GT(run.core->stats().cycles, 950u);
}

TEST(Pipeline, ResetStatsKeepsArchitecturalProgress)
{
    const Program prog = buildProgram([](Assembler &as) {
        as.li(1, 0);
        as.li(2, 4000);
        as.label("loop");
        as.beq(2, "done");
        as.add(1, 1, 2);
        as.subi(2, 2, 1);
        as.br("loop");
        as.label("done");
        as.halt();
    });
    SparseMemory mem;
    prog.load(mem);
    OutOfOrderCore core(presets::baseline(), mem, prog.entry);
    core.run(1000);
    core.resetStats();
    EXPECT_EQ(core.stats().committed, 0u);
    core.run(1'000'000);
    EXPECT_TRUE(core.done());
    // 4000*(4001)/2 regardless of the mid-run stats reset.
    EXPECT_EQ(core.reg(1), 4000u * 4001 / 2);
}

/**
 * Mispredict-drain loop: an LFSR produces a 50/50 branch whose
 * resolution sits behind a burst of 16 ready narrow adds. Extra issue
 * bandwidth (8-issue/8-ALU, or packing) drains the adds faster, so the
 * mispredicted branch resolves and redirects fetch sooner — the same
 * contention the paper's Figures 10/11 measure.
 */
Program
mispredictDrainLoop(unsigned iters)
{
    return buildProgram([iters](Assembler &as) {
        as.li(1, 0xace1);
        as.li(2, static_cast<i64>(iters));
        as.label("loop");
        as.beq(2, "done");
        as.srli(4, 1, 2);
        as.xor_(4, 4, 1);
        as.srli(5, 1, 3);
        as.xor_(4, 4, 5);
        as.andi(4, 4, 1);
        as.srli(1, 1, 1);
        as.slli(5, 4, 15);
        as.or_(1, 1, 5);
        for (unsigned k = 0; k < 16; ++k)
            as.addi(static_cast<RegIndex>(6 + (k % 8)), 4,
                    static_cast<i64>(k));
        as.beq(4, "skip");
        as.addi(14, 14, 3);
        as.label("skip");
        as.subi(2, 2, 1);
        as.br("loop");
        as.label("done");
        as.halt();
    });
}

TEST(Pipeline, EightIssueBeatsBaselineOnBurstyCode)
{
    const Program prog = mispredictDrainLoop(1500);
    auto base = runDifferential(prog, presets::baseline());
    auto wide = runDifferential(prog, presets::issue8());
    // Extra issue/ALU bandwidth must buy a clear cycle reduction.
    EXPECT_LT(wide.core->stats().cycles,
              base.core->stats().cycles * 95 / 100);
    // Commit width still caps IPC at 4 on both machines (Figure 11).
    EXPECT_LE(wide.core->stats().ipc(), 4.001);
}

} // namespace
} // namespace nwsim
