/**
 * Distributed campaign execution: the TCP frame codec (torn, truncated,
 * oversized, and corrupted input), wire-blob versioning (BadMagic vs
 * VersionMismatch fail-fast), executor selection, and real loopback
 * sweeps — two workers byte-identical to the thread executor, a worker
 * killed mid-sweep, and journal-based resume across executors.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <csignal>

#include "common/error.hh"
#include "exp/campaign.hh"
#include "exp/configs.hh"
#include "exp/executor.hh"
#include "exp/remote.hh"
#include "exp/wire.hh"

namespace nwsim
{
namespace
{

RunOptions
tinyWindow()
{
    RunOptions opts;
    opts.warmupInsts = 2000;
    opts.measureInsts = 8000;
    return opts;
}

exp::Campaign
smokeGrid()
{
    return exp::Campaign::grid({"perl", "gsm-decode"},
                               {"baseline", "packing-replay"},
                               tinyWindow());
}

std::string
jsonNoTiming(const exp::ResultSet &results)
{
    std::ostringstream os;
    results.writeJson(os, /*include_timing=*/false);
    return os.str();
}

// ---- frame codec ---------------------------------------------------------

TEST(FrameCodec, RoundTripSurvivesTornDelivery)
{
    std::string stream;
    stream += exp::encodeFrame(exp::FrameType::HelloDriver, "hi");
    stream += exp::encodeFrame(exp::FrameType::Job,
                               std::string("\0\1binary\xff", 9));
    stream += exp::encodeFrame(exp::FrameType::Heartbeat, "");
    stream += exp::encodeFrame(exp::FrameType::Outcome, "payload");
    stream += exp::encodeFrame(exp::FrameType::Goodbye, "");

    // Deliver one byte at a time: a TCP receiver sees arbitrary
    // fragmentation and must reassemble exactly the frames sent.
    exp::FrameReader reader;
    std::vector<exp::Frame> got;
    exp::Frame frame;
    std::string err;
    for (char c : stream) {
        reader.feed(&c, 1);
        int have = 0;
        while ((have = reader.next(frame, &err)) > 0)
            got.push_back(frame);
        ASSERT_GE(have, 0) << err;
    }
    ASSERT_EQ(got.size(), 5u);
    EXPECT_EQ(got[0].type, exp::FrameType::HelloDriver);
    EXPECT_EQ(got[0].payload, "hi");
    EXPECT_EQ(got[1].type, exp::FrameType::Job);
    EXPECT_EQ(got[1].payload, std::string("\0\1binary\xff", 9));
    EXPECT_EQ(got[2].type, exp::FrameType::Heartbeat);
    EXPECT_EQ(got[3].payload, "payload");
    EXPECT_EQ(got[4].type, exp::FrameType::Goodbye);
}

TEST(FrameCodec, TruncatedFrameWaitsForMoreBytes)
{
    const std::string bytes =
        exp::encodeFrame(exp::FrameType::Job, "abcdef");
    exp::FrameReader reader;
    exp::Frame frame;
    std::string err;
    reader.feed(bytes.data(), bytes.size() - 1);
    EXPECT_EQ(reader.next(frame, &err), 0);
    EXPECT_EQ(reader.next(frame, &err), 0); // still waiting, no error
    reader.feed(bytes.data() + bytes.size() - 1, 1);
    ASSERT_EQ(reader.next(frame, &err), 1);
    EXPECT_EQ(frame.payload, "abcdef");
}

TEST(FrameCodec, BadMagicIsUnrecoverable)
{
    exp::FrameReader reader;
    exp::Frame frame;
    std::string err;
    const std::string junk = "HTTP/1.1 200 OK\r\n";
    reader.feed(junk.data(), junk.size());
    EXPECT_EQ(reader.next(frame, &err), -1);
    EXPECT_NE(err.find("magic"), std::string::npos);
}

TEST(FrameCodec, OversizedFrameRejected)
{
    // Hand-craft a header whose length field exceeds the cap: a peer
    // like that is desynced or hostile, never legitimate.
    exp::WireSink s;
    s.magic(exp::kFrameMagic);
    s.u8v(static_cast<u8>(exp::FrameType::Job));
    s.u32v(static_cast<u32>(exp::kMaxFramePayload + 1));
    const std::string bytes = s.take();
    exp::FrameReader reader;
    exp::Frame frame;
    std::string err;
    reader.feed(bytes.data(), bytes.size());
    EXPECT_EQ(reader.next(frame, &err), -1);
    EXPECT_NE(err.find("oversized"), std::string::npos);
}

TEST(FrameCodec, UnknownFrameTypeRejected)
{
    exp::WireSink s;
    s.magic(exp::kFrameMagic);
    s.u8v(0); // no such frame type
    s.u32v(0);
    const std::string bytes = s.take();
    exp::FrameReader reader;
    exp::Frame frame;
    std::string err;
    reader.feed(bytes.data(), bytes.size());
    EXPECT_EQ(reader.next(frame, &err), -1);
    EXPECT_NE(err.find("type"), std::string::npos);
}

// ---- wire blobs: versioning and fuzz ------------------------------------

exp::JobOutcome
sampleOutcome()
{
    exp::JobOutcome o;
    o.workload = "perl";
    o.configSpec = "packing-replay+decode8";
    o.ok = true;
    o.status = exp::JobStatus::Ok;
    o.attempts = 2;
    o.wallSeconds = 1.25;
    o.result.workload = "perl";
    o.result.configName = "packing-replay+decode8";
    return o;
}

exp::SimJob
sampleJob()
{
    exp::SimJob job;
    job.workload = "gsm-decode";
    job.configSpec = "packing-replay";
    job.config = exp::configBySpec("packing-replay");
    job.opts = tinyWindow();
    job.asmText = "loop:\n  addi r1, r1, 1\n  beq r0, r0, loop\n";
    return job;
}

TEST(WireBlob, OutcomeTruncationNeverParses)
{
    const std::string blob = exp::packJobOutcome(sampleOutcome());
    for (size_t n = 0; n < blob.size(); ++n) {
        exp::JobOutcome out;
        EXPECT_NE(exp::unpackJobOutcomeErr(
                      std::string_view(blob.data(), n), out),
                  exp::WireError::None)
            << "prefix of " << n << " bytes parsed";
    }
}

TEST(WireBlob, BadMagicVersusVersionMismatch)
{
    std::string blob = exp::packJobOutcome(sampleOutcome());
    exp::JobOutcome out;

    std::string wrong_magic = blob;
    wrong_magic[0] ^= 0x20;
    EXPECT_EQ(exp::unpackJobOutcomeErr(wrong_magic, out),
              exp::WireError::BadMagic);

    // Right magic, other format generation: must be distinguishable
    // from corruption so the error message can say "rebuild", not
    // "torn write".
    std::string wrong_version = blob;
    wrong_version[4] =
        static_cast<char>(exp::kWireVersion + 1);
    EXPECT_EQ(exp::unpackJobOutcomeErr(wrong_version, out),
              exp::WireError::VersionMismatch);

    std::string trailing = blob + "x";
    EXPECT_EQ(exp::unpackJobOutcomeErr(trailing, out),
              exp::WireError::Corrupt);

    EXPECT_EQ(exp::unpackJobOutcomeErr(blob, out),
              exp::WireError::None);
    EXPECT_EQ(out.label(), sampleOutcome().label());
    EXPECT_EQ(out.attempts, 2u);
}

TEST(WireBlob, JobSpecRoundTripIsCanonical)
{
    const exp::SimJob job = sampleJob();
    const std::string blob = exp::packSimJobSpec(job);

    exp::SimJob back;
    ASSERT_EQ(exp::unpackSimJobSpec(blob, back),
              exp::WireError::None);
    EXPECT_EQ(back.label(), job.label());
    EXPECT_EQ(back.asmText, job.asmText);
    EXPECT_EQ(back.opts.warmupInsts, job.opts.warmupInsts);
    EXPECT_EQ(back.opts.measureInsts, job.opts.measureInsts);
    EXPECT_FALSE(back.runner);

    // Re-packing the decoded job must reproduce the blob byte for byte
    // — this is what makes remote execution's stats trustworthy without
    // comparing every CoreConfig field by hand.
    EXPECT_EQ(exp::packSimJobSpec(back), blob);
}

TEST(WireBlob, JobSpecHeaderChecks)
{
    std::string blob = exp::packSimJobSpec(sampleJob());
    exp::SimJob out;

    std::string wrong_magic = blob;
    wrong_magic[1] ^= 0x01;
    EXPECT_EQ(exp::unpackSimJobSpec(wrong_magic, out),
              exp::WireError::BadMagic);

    std::string wrong_version = blob;
    wrong_version[4] = static_cast<char>(exp::kWireVersion + 3);
    EXPECT_EQ(exp::unpackSimJobSpec(wrong_version, out),
              exp::WireError::VersionMismatch);

    for (size_t n = 0; n < 16 && n < blob.size(); ++n) {
        EXPECT_NE(exp::unpackSimJobSpec(
                      std::string_view(blob.data(), n), out),
                  exp::WireError::None);
    }
}

TEST(WireBlob, ByteFlipFuzzNeverCrashes)
{
    const std::string outcome_blob =
        exp::packJobOutcome(sampleOutcome());
    const std::string spec_blob = exp::packSimJobSpec(sampleJob());
    std::mt19937 rng(1999); // fixed seed: deterministic corpus
    for (int iter = 0; iter < 500; ++iter) {
        std::string blob =
            (iter % 2) ? outcome_blob : spec_blob;
        // Flip a random byte, then truncate at a random point: every
        // mutation must classify or parse, never crash or hang.
        blob[rng() % blob.size()] ^=
            static_cast<char>(1u << (rng() % 8));
        blob.resize(rng() % (blob.size() + 1));
        exp::JobOutcome out;
        exp::SimJob job;
        if (iter % 2)
            exp::unpackJobOutcomeErr(blob, out);
        else
            exp::unpackSimJobSpec(blob, job);
    }
    SUCCEED();
}

// ---- executor selection --------------------------------------------------

TEST(Executor, KindResolution)
{
    exp::CampaignOptions copts;
    EXPECT_EQ(exp::resolveExecutorKind(copts),
              exp::ExecutorKind::Thread);
    copts.isolate = true;
    EXPECT_EQ(exp::resolveExecutorKind(copts), exp::ExecutorKind::Fork);
    copts.workerHosts = {"127.0.0.1:7070"};
    EXPECT_EQ(exp::resolveExecutorKind(copts),
              exp::ExecutorKind::Remote);
    copts.executor = exp::ExecutorKind::Thread; // explicit wins
    EXPECT_EQ(exp::resolveExecutorKind(copts),
              exp::ExecutorKind::Thread);
    EXPECT_STREQ(exp::executorKindName(exp::ExecutorKind::Fork),
                 "fork");
}

TEST(Executor, RemoteRefusesCustomRunnerJobs)
{
    // A runner closure cannot cross a process boundary; the remote
    // executor must say so up front (before dialing anything) instead
    // of shipping a job that would silently run differently.
    std::vector<exp::SimJob> jobs(1);
    jobs[0].workload = "custom";
    jobs[0].configSpec = "test";
    jobs[0].runner = [](const exp::SimJob &) { return RunResult{}; };
    exp::CampaignOptions copts;
    copts.workerHosts = {"127.0.0.1:1"};
    std::vector<exp::JobOutcome> outcomes(1);
    exp::RemoteExecutor ex;
    EXPECT_THROW(ex.execute(jobs, {0}, copts, outcomes, {}),
                 BadInputError);
}

// ---- loopback distributed sweeps ----------------------------------------

TEST(Distributed, TwoWorkerSweepByteIdenticalToThreads)
{
    const exp::Campaign campaign = smokeGrid();

    exp::CampaignOptions tc;
    tc.jobs = 4;
    const exp::ResultSet threaded = campaign.run(tc);
    ASSERT_TRUE(threaded.allOk());

    exp::LocalWorkerFleet fleet(2, 2);
    exp::CampaignOptions rc;
    rc.workerHosts = fleet.hosts();
    rc.remoteWindow = 2;
    const exp::ResultSet remote = campaign.run(rc);
    ASSERT_TRUE(remote.allOk());

    EXPECT_EQ(jsonNoTiming(threaded), jsonNoTiming(remote));
}

TEST(Distributed, WorkerKilledMidSweepStillCompletes)
{
    const exp::Campaign campaign = exp::Campaign::grid(
        {"perl", "gsm-decode", "compress"},
        {"baseline", "packing-replay"}, tinyWindow());
    const std::vector<exp::SimJob> &jobs = campaign.jobs();
    std::vector<size_t> indices(jobs.size());
    for (size_t i = 0; i < indices.size(); ++i)
        indices[i] = i;

    exp::CampaignOptions tc;
    tc.jobs = 2;
    const exp::ResultSet reference = campaign.run(tc);
    ASSERT_TRUE(reference.allOk());

    auto fleet = std::make_unique<exp::LocalWorkerFleet>(2, 1);
    exp::CampaignOptions rc;
    rc.workerHosts = fleet->hosts();
    rc.remoteWindow = 1;
    rc.workerLossSeconds = 5.0;
    rc.reconnectAttempts = 1;

    // Kill worker 0 as soon as the first outcome lands: its remaining
    // jobs must be reassigned to the survivor and the sweep complete
    // with bit-identical statistics.
    std::vector<exp::JobOutcome> outcomes(jobs.size());
    size_t landed = 0;
    exp::RemoteExecutor ex;
    ex.execute(jobs, indices, rc, outcomes, [&](size_t) {
        if (++landed == 1)
            fleet->kill(0);
    });

    ASSERT_EQ(landed, jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        const exp::JobOutcome &got = outcomes[i];
        const exp::JobOutcome &want = reference.outcomes()[i];
        ASSERT_TRUE(got.ok) << got.label() << ": " << got.error;
        ASSERT_EQ(got.label(), want.label());
        EXPECT_EQ(got.result.core.cycles, want.result.core.cycles)
            << got.label();
        EXPECT_EQ(got.result.measuredCommitted,
                  want.result.measuredCommitted);
    }
}

TEST(Distributed, JournalResumeMergesAcrossExecutors)
{
    const std::string journal = "test_distributed_journal.nwj";
    std::remove(journal.c_str());

    const exp::Campaign full = smokeGrid();
    const exp::Campaign half = exp::Campaign::grid(
        {"perl", "gsm-decode"}, {"baseline"}, tinyWindow());

    // Phase 1: half the grid on the thread executor, journaled.
    exp::CampaignOptions jc;
    jc.journal = journal;
    ASSERT_TRUE(half.run(jc).allOk());

    // Phase 2: the full grid resumes over remote workers — only the
    // un-journaled jobs travel; journaled outcomes merge in verbatim.
    exp::LocalWorkerFleet fleet(2, 1);
    exp::CampaignOptions rc;
    rc.journal = journal;
    rc.resume = true;
    rc.workerHosts = fleet.hosts();
    const exp::ResultSet merged = full.run(rc);
    ASSERT_TRUE(merged.allOk());

    const exp::ResultSet reference = full.run({});
    EXPECT_EQ(jsonNoTiming(merged), jsonNoTiming(reference));

    // Phase 3: everything is journaled now, so a resume must succeed
    // without reaching any worker at all (the fleet above is gone —
    // its daemons serve one session each).
    exp::CampaignOptions dead;
    dead.journal = journal;
    dead.resume = true;
    dead.workerHosts = {"127.0.0.1:9"}; // nothing listens here
    const exp::ResultSet replay = full.run(dead);
    ASSERT_TRUE(replay.allOk());
    EXPECT_EQ(jsonNoTiming(replay), jsonNoTiming(reference));

    std::remove(journal.c_str());
}

} // namespace
} // namespace nwsim
