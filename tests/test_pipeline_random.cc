/**
 * Property-based differential testing: randomly generated programs must
 * produce bit-identical architected state on the out-of-order pipeline
 * (in every configuration) and the functional golden model.
 */

#include "sim_test_util.hh"

#include "common/rng.hh"
#include "driver/presets.hh"

namespace nwsim
{
namespace
{

/**
 * Generate a terminating random program: `blocks` basic blocks, each
 * with random ALU/memory ops, chained by data-dependent forward
 * branches, wrapped in a counted outer loop.
 */
Program
randomProgram(u64 seed, unsigned blocks, unsigned block_len,
              unsigned iterations)
{
    SplitMix64 rng(seed);
    Assembler as;
    // r16 = data base, r17 = loop counter, r18..r20 reserved.
    as.la(16, "data");
    as.li(17, static_cast<i64>(iterations));
    as.label("outer");
    as.beq(17, "finish");

    for (unsigned b = 0; b < blocks; ++b) {
        as.label("blk" + std::to_string(b));
        for (unsigned i = 0; i < block_len; ++i) {
            const auto rnd_reg = [&] {
                return static_cast<RegIndex>(1 + rng.below(12));
            };
            const RegIndex rc = rnd_reg();
            const RegIndex ra = rnd_reg();
            const RegIndex rb = rnd_reg();
            switch (rng.below(14)) {
              case 0:
                as.add(rc, ra, rb);
                break;
              case 1:
                as.sub(rc, ra, rb);
                break;
              case 2:
                as.addi(rc, ra, rng.range(-500, 500));
                break;
              case 3:
                as.xor_(rc, ra, rb);
                break;
              case 4:
                as.and_(rc, ra, rb);
                break;
              case 5:
                as.slli(rc, ra, static_cast<i64>(rng.below(20)));
                break;
              case 6:
                as.srai(rc, ra, static_cast<i64>(rng.below(20)));
                break;
              case 7:
                as.mul(rc, ra, rb);
                break;
              case 8:
                as.cmplt(rc, ra, rb);
                break;
              case 9: {
                // Bounded load/store inside the data blob.
                const i64 off = static_cast<i64>(rng.below(32)) * 8;
                if (rng.below(2))
                    as.ldq(rc, off, 16);
                else
                    as.stq(ra, off, 16);
                break;
              }
              case 10:
                as.ldbu(rc, static_cast<i64>(rng.below(256)), 16);
                break;
              case 11:
                as.sextw(rc, ra);
                break;
              case 12:
                as.div(rc, ra, rb);
                break;
              default:
                as.ori(rc, ra, static_cast<i64>(rng.below(65536)));
                break;
            }
        }
        // Data-dependent forward branch over a junk op.
        const RegIndex cond = static_cast<RegIndex>(1 + rng.below(12));
        const std::string skip = "skip" + std::to_string(b);
        switch (rng.below(3)) {
          case 0:
            as.beq(cond, skip);
            break;
          case 1:
            as.blt(cond, skip);
            break;
          default:
            as.bgt(cond, skip);
            break;
        }
        as.addi(static_cast<RegIndex>(1 + rng.below(12)), cond, 13);
        as.label(skip);
    }

    as.subi(17, 17, 1);
    as.br("outer");
    as.label("finish");
    as.halt();

    as.alignData(8);
    as.dataLabel("data");
    for (int i = 0; i < 64; ++i)
        as.dataQuad(rng.next());
    return as.assemble();
}

class RandomProgram : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomProgram, BaselineMatchesGolden)
{
    const Program prog =
        randomProgram(1000 + GetParam(), 6, 12, 40);
    test::runDifferential(prog, presets::baseline());
}

TEST_P(RandomProgram, PerfectPredictionMatchesGolden)
{
    const Program prog =
        randomProgram(2000 + GetParam(), 5, 10, 30);
    auto run = test::runDifferential(prog, presets::baseline(true));
    EXPECT_EQ(run.core->stats().mispredictSquashes, 0u);
}

TEST_P(RandomProgram, PackingIsArchitecturallyInvisible)
{
    const Program prog =
        randomProgram(3000 + GetParam(), 6, 12, 40);
    test::runDifferential(prog, presets::packing(false));
}

TEST_P(RandomProgram, ReplayPackingIsArchitecturallyInvisible)
{
    const Program prog =
        randomProgram(4000 + GetParam(), 6, 12, 40);
    test::runDifferential(prog, presets::packing(true));
}

TEST_P(RandomProgram, WideMachinesMatchGolden)
{
    const Program prog =
        randomProgram(5000 + GetParam(), 5, 10, 30);
    test::runDifferential(prog, presets::issue8());
    test::runDifferential(prog, presets::decode8(presets::packing(true)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgram, ::testing::Range(0, 12));

} // namespace
} // namespace nwsim
