/** Unit tests for the narrow-width detection core (core/width.hh). */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/width.hh"

namespace nwsim
{
namespace
{

TEST(Width, PaperExamples)
{
    // "adding 17, a 5-bit number, to 2, a 2-bit number, the result is
    // 19, a 5-bit number".
    EXPECT_EQ(effectiveWidth(17), 5u);
    EXPECT_EQ(effectiveWidth(2), 2u);
    EXPECT_EQ(effectiveWidth(19), 5u);
    // Address-calculation values land at 33 bits (heap above 2^32).
    EXPECT_EQ(effectiveWidth(u64{1} << 32), 33u);
    EXPECT_EQ(effectiveWidth((u64{1} << 32) + 0xbeef), 33u);
}

TEST(Width, Boundaries)
{
    EXPECT_EQ(effectiveWidth(0), 1u);
    EXPECT_EQ(effectiveWidth(~u64{0}), 1u);     // -1: leading ones
    EXPECT_EQ(effectiveWidth(65535), 16u);
    EXPECT_EQ(effectiveWidth(65536), 17u);
    EXPECT_EQ(effectiveWidth(static_cast<u64>(-65536)), 16u);
    EXPECT_EQ(effectiveWidth(static_cast<u64>(-65537)), 17u);
    // INT64_MIN: 63 magnitude bits remain after the sign (the metric
    // counts magnitude bits, mirroring the paper's "17 is 5 bits").
    EXPECT_EQ(effectiveWidth(u64{1} << 63), 63u);
}

TEST(Width, Narrow16MatchesZeroOnesDetect)
{
    // isNarrow16 is exactly the zero48-or-ones48 hardware condition.
    EXPECT_TRUE(isNarrow16(0));
    EXPECT_TRUE(isNarrow16(65535));             // zero48 fires
    EXPECT_FALSE(isNarrow16(65536));
    EXPECT_TRUE(isNarrow16(~u64{0}));           // ones48 fires
    EXPECT_TRUE(isNarrow16(static_cast<u64>(-65536)));
    EXPECT_FALSE(isNarrow16(static_cast<u64>(-65537)));
}

TEST(Width, Narrow33CoversAddresses)
{
    EXPECT_TRUE(isNarrow33((u64{1} << 32) + 12345));
    EXPECT_TRUE(isNarrow33((u64{1} << 33) - 1));
    EXPECT_FALSE(isNarrow33(u64{1} << 33));
    EXPECT_TRUE(isNarrow33(static_cast<u64>(-(i64{1} << 33))));
    EXPECT_FALSE(isNarrow33(static_cast<u64>(-(i64{1} << 33) - 1)));
}

TEST(Width, ClassOfAndPairClass)
{
    EXPECT_EQ(classOf(100), WidthClass::Narrow16);
    EXPECT_EQ(classOf(u64{1} << 20), WidthClass::Narrow33);
    EXPECT_EQ(classOf(u64{1} << 40), WidthClass::Wide);
    // Both operands must be narrow for the op to be narrow.
    EXPECT_EQ(pairClass(3, 7), WidthClass::Narrow16);
    EXPECT_EQ(pairClass(3, u64{1} << 32), WidthClass::Narrow33);
    EXPECT_EQ(pairClass(u64{1} << 40, 2), WidthClass::Wide);
}

TEST(Width, GatedWidth)
{
    EXPECT_EQ(gatedWidth(WidthClass::Narrow16), 16u);
    EXPECT_EQ(gatedWidth(WidthClass::Narrow33), 33u);
    EXPECT_EQ(gatedWidth(WidthClass::Wide), 64u);
}

/** Property: width classes and effectiveWidth stay mutually consistent. */
class WidthProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(WidthProperty, ClassesMatchEffectiveWidth)
{
    SplitMix64 rng(GetParam() * 31 + 1);
    for (int i = 0; i < 5000; ++i) {
        // Mix full-range and small-magnitude values.
        u64 v = rng.next();
        if (i % 3 == 0)
            v = static_cast<u64>(rng.range(-100000, 100000));
        const unsigned w = effectiveWidth(v);
        EXPECT_EQ(isNarrow16(v), w <= 16) << v;
        EXPECT_EQ(isNarrow33(v), w <= 33) << v;
        // A narrow value sign-extends from 17 bits (value in
        // [-2^16, 2^16-1]).
        if (isNarrow16(v)) {
            EXPECT_TRUE(fitsSigned(v, 17)) << v;
        }
        // Negation preserves narrowness except at the asymmetric edge.
        const u64 neg = static_cast<u64>(-static_cast<i64>(v));
        if (isNarrow16(v) && v != static_cast<u64>(-65536)) {
            EXPECT_TRUE(isNarrow16(neg)) << v;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WidthProperty, ::testing::Range(0, 6));

} // namespace
} // namespace nwsim
