/**
 * Crash-proof campaign machinery: the SimError taxonomy, the outcome
 * wire format, the crash-safe journal and resume path, retry backoff,
 * exception-safe job pools, process isolation (crash + timeout
 * classification), reproducer bundles, and the core's deadlock
 * watchdog. See docs/ROBUSTNESS.md for the design these tests pin down.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "asm/textasm.hh"
#include "check/fuzz.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "exp/bundle.hh"
#include "exp/campaign.hh"
#include "exp/configs.hh"
#include "exp/job_pool.hh"
#include "exp/journal.hh"
#include "exp/wire.hh"
#include "mem/sparse_memory.hh"
#include "pipeline/core.hh"

namespace nwsim
{
namespace
{

namespace fs = std::filesystem;
using exp::CampaignOptions;
using exp::FailKind;
using exp::JobOutcome;
using exp::JobStatus;
using exp::SimJob;

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "nwsim_robustness_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream s;
    s << in.rdbuf();
    return s.str();
}

/** A short real simulation, for outcomes that need genuine stats. */
RunResult
tinyRun()
{
    const Program prog = assembleText(R"(
            li   r1, 0
            li   r2, 200
        loop:
            addi r1, r1, 3
            andi r3, r1, 255
            subi r2, r2, 1
            bne  r2, loop
            halt
    )");
    RunOptions opts;
    opts.warmupInsts = 0;
    opts.measureInsts = 100000;
    opts.fastWarmup = false;
    return runProgram(prog, exp::configBySpec("baseline"), opts, "tiny",
                      "baseline");
}

// ---- error taxonomy -----------------------------------------------------

TEST(ErrorTaxonomy, KindsMapToDistinctExitCodes)
{
    EXPECT_EQ(exitCodeFor(ErrorKind::BadInput), exitcode::BadInput);
    EXPECT_EQ(exitCodeFor(ErrorKind::Internal), exitcode::Internal);
    EXPECT_EQ(exitCodeFor(ErrorKind::ResourceLimit),
              exitcode::ResourceLimit);

    EXPECT_FALSE(errorKindRetryable(ErrorKind::BadInput));
    EXPECT_FALSE(errorKindRetryable(ErrorKind::Internal));
    EXPECT_TRUE(errorKindRetryable(ErrorKind::ResourceLimit));

    const InternalError internal("broken invariant");
    EXPECT_EQ(internal.exitCode(), exitcode::Internal);
    const BadInputError bad("nope");
    EXPECT_EQ(bad.exitCode(), exitcode::BadInput);
    // DeadlockError is an internal-invariant failure.
    const DeadlockError dead("stuck");
    EXPECT_EQ(dead.kind(), ErrorKind::Internal);
}

TEST(ErrorTaxonomy, FatalAndPanicThrowTheirClass)
{
    EXPECT_THROW(NWSIM_FATAL("bad spec"), BadInputError);
    EXPECT_THROW(NWSIM_PANIC("bad state"), InternalError);
}

TEST(ErrorTaxonomy, StatusTextNamesTheSignal)
{
    JobOutcome o;
    o.status = JobStatus::Crashed;
    o.termSignal = SIGSEGV;
    EXPECT_EQ(o.statusText(), "crashed(SIGSEGV)");
    o.status = JobStatus::Timeout;
    EXPECT_EQ(o.statusText(), "timeout");
}

// ---- wire format --------------------------------------------------------

TEST(Wire, HexRoundTrip)
{
    const std::string bytes("\x00\x7f\xff\x10 ok", 7);
    std::string back;
    ASSERT_TRUE(exp::fromHex(exp::toHex(bytes), back));
    EXPECT_EQ(back, bytes);
    EXPECT_FALSE(exp::fromHex("abc", back));  // odd length
    EXPECT_FALSE(exp::fromHex("zz", back));   // non-hex
}

TEST(Wire, OutcomeRoundTripIsBitStable)
{
    JobOutcome o;
    o.workload = "tiny";
    o.configSpec = "baseline";
    o.ok = true;
    o.status = JobStatus::Ok;
    o.attempts = 2;
    o.wallSeconds = 0.125;
    o.result = tinyRun();
    ASSERT_GT(o.result.core.committed, 0u);

    const std::string blob = exp::packJobOutcome(o);
    JobOutcome back;
    ASSERT_TRUE(exp::unpackJobOutcome(blob, back));
    EXPECT_EQ(back.workload, o.workload);
    EXPECT_EQ(back.attempts, o.attempts);
    EXPECT_EQ(back.result.core.committed, o.result.core.committed);
    EXPECT_EQ(back.result.core.cycles, o.result.core.cycles);
    EXPECT_EQ(back.result.profiler.totalOps(),
              o.result.profiler.totalOps());
    EXPECT_EQ(back.result.profiler.narrow16TotalPercent(),
              o.result.profiler.narrow16TotalPercent());
    // Byte-stable: re-packing the unpacked outcome reproduces the blob
    // exactly (the resume drill's bit-identical JSON rests on this).
    EXPECT_EQ(exp::packJobOutcome(back), blob);
}

TEST(Wire, RejectsTruncationTrailingGarbageAndBadVersion)
{
    JobOutcome o;
    o.workload = "w";
    o.configSpec = "c";
    o.status = JobStatus::Failed;
    o.errorKind = FailKind::Internal;
    o.error = "boom";
    const std::string blob = exp::packJobOutcome(o);

    JobOutcome back;
    EXPECT_TRUE(exp::unpackJobOutcome(blob, back));
    EXPECT_FALSE(
        exp::unpackJobOutcome(blob.substr(0, blob.size() - 1), back));
    EXPECT_FALSE(exp::unpackJobOutcome(blob + "x", back));
    std::string wrong_version = blob;
    wrong_version[0] = 99;
    EXPECT_FALSE(exp::unpackJobOutcome(wrong_version, back));
}

// ---- journal ------------------------------------------------------------

TEST(Journal, RecordRoundTrip)
{
    JobOutcome o;
    o.workload = "perl";
    o.configSpec = "packing-replay+decode8";
    o.status = JobStatus::Crashed;
    o.termSignal = SIGSEGV;
    o.errorKind = FailKind::Internal;
    o.error = "isolated job killed by SIGSEGV";
    o.attempts = 1;

    const std::string line = exp::CampaignJournal::formatRecord(o);
    EXPECT_EQ(line.find("nwj2 perl packing-replay+decode8 crashed - "),
              0u);

    JobOutcome back;
    ASSERT_TRUE(exp::CampaignJournal::parseRecord(line, back));
    EXPECT_EQ(back.status, JobStatus::Crashed);
    EXPECT_EQ(back.termSignal, SIGSEGV);
    EXPECT_EQ(back.error, o.error);
}

TEST(Journal, RejectsTornAndTamperedRecords)
{
    JobOutcome o;
    o.workload = "w";
    o.configSpec = "c";
    o.ok = true;
    o.status = JobStatus::Ok;
    const std::string line = exp::CampaignJournal::formatRecord(o);

    JobOutcome back;
    // Torn mid-write: any prefix must be rejected.
    for (size_t cut : {line.size() - 1, line.size() / 2, size_t{4}}) {
        EXPECT_FALSE(
            exp::CampaignJournal::parseRecord(line.substr(0, cut), back))
            << "accepted a record cut at " << cut;
    }
    // Tampered payload: checksum must catch a flipped status token.
    std::string tampered = line;
    tampered.replace(line.find(" ok "), 4, " no ");
    EXPECT_FALSE(exp::CampaignJournal::parseRecord(tampered, back));
    EXPECT_FALSE(exp::CampaignJournal::parseRecord("", back));
    EXPECT_FALSE(
        exp::CampaignJournal::parseRecord(line + " extra", back));
}

TEST(Journal, LoadSkipsTornLinesAndMissingFileIsEmpty)
{
    const std::string path = tempPath("journal_torn");
    JobOutcome a, b;
    a.workload = "a";
    a.configSpec = "c";
    a.ok = true;
    a.status = JobStatus::Ok;
    b.workload = "b";
    b.configSpec = "c";
    b.status = JobStatus::Failed;
    b.errorKind = FailKind::Unknown;
    b.error = "x";
    {
        exp::CampaignJournal journal(path, /*fresh=*/true);
        journal.append(a);
        journal.append(b);
    }
    // Simulate a crash mid-append: a third record cut off halfway.
    {
        std::ofstream out(path, std::ios::app);
        const std::string line = exp::CampaignJournal::formatRecord(a);
        out << line.substr(0, line.size() / 2);
    }
    const auto records = exp::CampaignJournal::load(path);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].workload, "a");
    EXPECT_EQ(records[1].workload, "b");
    EXPECT_EQ(records[1].errorKind, FailKind::Unknown);

    EXPECT_TRUE(exp::CampaignJournal::load(tempPath("nonexistent"))
                    .empty());
    fs::remove(path);
}

// ---- retry backoff ------------------------------------------------------

TEST(Backoff, DeterministicJitterWithExponentialGrowth)
{
    // Same (job, attempt) -> same delay, every time.
    EXPECT_EQ(exp::retryBackoffSeconds(3, 2, 0.05),
              exp::retryBackoffSeconds(3, 2, 0.05));
    // Different jobs desynchronize their retries.
    EXPECT_NE(exp::retryBackoffSeconds(3, 2, 0.05),
              exp::retryBackoffSeconds(4, 2, 0.05));
    // Jittered exponential envelope: base*2^(attempt-2) * [0.5, 1.5).
    for (unsigned attempt = 2; attempt <= 6; ++attempt) {
        const double scale = 0.05 * static_cast<double>(1u << (attempt - 2));
        const double d = exp::retryBackoffSeconds(7, attempt, 0.05);
        EXPECT_GE(d, 0.5 * scale);
        EXPECT_LT(d, 1.5 * scale);
    }
    // No delay before the first attempt or when backoff is disabled.
    EXPECT_EQ(exp::retryBackoffSeconds(0, 1, 0.05), 0.0);
    EXPECT_EQ(exp::retryBackoffSeconds(0, 3, 0.0), 0.0);
}

// ---- job pool -----------------------------------------------------------

TEST(JobPool, DrainsEveryTaskAndRethrowsAfterJoin)
{
    exp::JobPool pool(4);
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 16; ++i) {
        tasks.push_back([i, &ran] {
            ran.fetch_add(1);
            if (i == 2)
                throw std::runtime_error("task 2 exploded");
        });
    }
    EXPECT_THROW(pool.run(tasks), std::runtime_error);
    // The throwing task must not strand the rest of the batch.
    EXPECT_EQ(ran.load(), 16);
}

// ---- campaign classification and retries --------------------------------

SimJob
throwingJob(const std::string &name, std::function<void()> thrower,
            std::atomic<int> *count = nullptr)
{
    SimJob job;
    job.workload = name;
    job.configSpec = "cfg";
    job.runner = [thrower, count](const SimJob &) -> RunResult {
        if (count)
            count->fetch_add(1);
        thrower();
        return {};
    };
    return job;
}

TEST(Campaign, DeterministicFailuresAreNotRetried)
{
    std::atomic<int> badInputRuns{0}, internalRuns{0}, unknownRuns{0};
    exp::Campaign c;
    c.add(throwingJob(
         "bad", [] { throw BadInputError("unusable"); }, &badInputRuns))
        .add(throwingJob(
            "internal", [] { throw InternalError("invariant"); },
            &internalRuns))
        .add(throwingJob(
            "unknown", [] { throw std::runtime_error("eh"); },
            &unknownRuns));

    CampaignOptions copts;
    copts.jobs = 1;
    copts.maxAttempts = 3;
    copts.backoffBaseSeconds = 0.0;  // no sleeping in tests
    const exp::ResultSet rs = c.run(copts);

    const JobOutcome *bad = rs.find("bad", "cfg");
    ASSERT_NE(bad, nullptr);
    EXPECT_EQ(bad->status, JobStatus::Failed);
    EXPECT_EQ(bad->errorKind, FailKind::BadInput);
    EXPECT_EQ(bad->attempts, 1u);
    EXPECT_EQ(badInputRuns.load(), 1);

    const JobOutcome *internal = rs.find("internal", "cfg");
    ASSERT_NE(internal, nullptr);
    EXPECT_EQ(internal->errorKind, FailKind::Internal);
    EXPECT_EQ(internal->attempts, 1u);

    // Unclassified exceptions might be transient: retried to the limit.
    const JobOutcome *unknown = rs.find("unknown", "cfg");
    ASSERT_NE(unknown, nullptr);
    EXPECT_EQ(unknown->errorKind, FailKind::Unknown);
    EXPECT_EQ(unknown->attempts, 3u);
    EXPECT_EQ(unknownRuns.load(), 3);
}

TEST(Campaign, InternalFailureGetsAReproducerBundle)
{
    const std::string dir = tempPath("bundles");
    fs::remove_all(dir);
    exp::Campaign c;
    c.add(throwingJob("broken", [] { throw InternalError("bug"); }));
    CampaignOptions copts;
    copts.jobs = 1;
    copts.maxAttempts = 1;
    copts.bundleDir = dir;
    const exp::ResultSet rs = c.run(copts);

    const JobOutcome *o = rs.find("broken", "cfg");
    ASSERT_NE(o, nullptr);
    ASSERT_FALSE(o->bundlePath.empty());
    const std::string manifest = slurp(o->bundlePath + "/MANIFEST.txt");
    EXPECT_NE(manifest.find("error-kind: internal"), std::string::npos);
    EXPECT_NE(manifest.find("bug"), std::string::npos);
    fs::remove_all(dir);
}

// ---- journal + resume ---------------------------------------------------

TEST(Campaign, ResumeSkipsJournaledJobsEntirely)
{
    const std::string path = tempPath("journal_resume");
    std::atomic<int> runs{0};
    auto okJob = [&runs](const std::string &name) {
        SimJob job;
        job.workload = name;
        job.configSpec = "cfg";
        job.runner = [&runs](const SimJob &) -> RunResult {
            runs.fetch_add(1);
            return {};
        };
        return job;
    };
    exp::Campaign c;
    c.add(okJob("one")).add(okJob("two"));

    CampaignOptions copts;
    copts.jobs = 1;
    copts.journal = path;
    c.run(copts);
    EXPECT_EQ(runs.load(), 2);

    // Resume with a complete journal: nothing re-runs, outcomes merge
    // back into their slots.
    copts.resume = true;
    const exp::ResultSet resumed = c.run(copts);
    EXPECT_EQ(runs.load(), 2);
    EXPECT_TRUE(resumed.allOk());
    EXPECT_EQ(resumed.size(), 2u);

    // Resume with only job one journaled: exactly job two re-runs.
    const std::string partial = tempPath("journal_partial");
    {
        std::ifstream in(path);
        std::ofstream out(partial);
        std::string first;
        std::getline(in, first);
        out << first << "\n";
    }
    copts.journal = partial;
    const exp::ResultSet partialRun = c.run(copts);
    EXPECT_EQ(runs.load(), 3);
    EXPECT_TRUE(partialRun.allOk());
    // The journal now holds job two's record as well.
    EXPECT_EQ(exp::CampaignJournal::load(partial).size(), 2u);
    fs::remove(path);
    fs::remove(partial);
}

TEST(Campaign, KillMidCampaignResumeIsBitIdentical)
{
    // Real simulations, so the merged statistics are nontrivial.
    RunOptions opts;
    opts.warmupInsts = 500;
    opts.measureInsts = 2000;
    const exp::Campaign campaign = exp::Campaign::grid(
        {"perl"}, {"baseline", "packing-replay"}, opts);

    const std::string full = tempPath("journal_full");
    const std::string cut = tempPath("journal_cut");

    CampaignOptions copts;
    copts.jobs = 1;
    copts.journal = full;
    std::ostringstream uninterrupted;
    campaign.run(copts).writeJson(uninterrupted,
                                  /*include_timing=*/false);

    // "Kill" the campaign after its first job by keeping only the first
    // journal record, then resume from it.
    {
        std::ifstream in(full);
        std::ofstream out(cut);
        std::string first;
        std::getline(in, first);
        out << first << "\n";
    }
    copts.journal = cut;
    copts.resume = true;
    std::ostringstream resumed;
    campaign.run(copts).writeJson(resumed, /*include_timing=*/false);

    EXPECT_EQ(uninterrupted.str(), resumed.str());
    fs::remove(full);
    fs::remove(cut);
}

// ---- process isolation --------------------------------------------------

TEST(Campaign, IsolatedCrashIsRecordedAndSiblingsSurvive)
{
    exp::Campaign c;
    SimJob good;
    good.workload = "good";
    good.configSpec = "cfg";
    good.runner = [](const SimJob &) -> RunResult { return {}; };
    SimJob boom;
    boom.workload = "boom";
    boom.configSpec = "cfg";
    boom.runner = [](const SimJob &) -> RunResult {
        std::raise(SIGSEGV);
        return {};
    };
    c.add(good).add(boom);

    CampaignOptions copts;
    copts.isolate = true;
    copts.jobs = 2;
    const exp::ResultSet rs = c.run(copts);

    const JobOutcome *ok = rs.find("good", "cfg");
    ASSERT_NE(ok, nullptr);
    EXPECT_TRUE(ok->ok);

    const JobOutcome *crashed = rs.find("boom", "cfg");
    ASSERT_NE(crashed, nullptr);
    EXPECT_EQ(crashed->status, JobStatus::Crashed);
    EXPECT_EQ(crashed->termSignal, SIGSEGV);
    EXPECT_EQ(crashed->statusText(), "crashed(SIGSEGV)");
}

TEST(Campaign, IsolatedHangIsKilledByTheWatchdog)
{
    exp::Campaign c;
    SimJob hang;
    hang.workload = "hang";
    hang.configSpec = "cfg";
    hang.runner = [](const SimJob &) -> RunResult {
        for (;;)
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
    };
    c.add(hang);

    CampaignOptions copts;
    copts.isolate = true;
    copts.jobs = 1;
    copts.timeoutSeconds = 0.3;
    const exp::ResultSet rs = c.run(copts);

    const JobOutcome *o = rs.find("hang", "cfg");
    ASSERT_NE(o, nullptr);
    EXPECT_EQ(o->status, JobStatus::Timeout);
    EXPECT_NE(o->error.find("timed out"), std::string::npos);
}

TEST(Campaign, CpuRlimitKillIsClassifiedAsResourceLimit)
{
    exp::Campaign c;
    SimJob spin;
    spin.workload = "spin";
    spin.configSpec = "cfg";
    spin.runner = [](const SimJob &) -> RunResult {
        // Burn CPU (a sleep would never trip RLIMIT_CPU).
        volatile unsigned long v = 0;
        for (;;)
            v += 1;
    };
    c.add(spin);

    CampaignOptions copts;
    copts.isolate = true;
    copts.jobs = 1;
    copts.maxAttempts = 1;
    copts.rlimitCpuSeconds = 1.0;
    copts.timeoutSeconds = 30.0; // backstop only; SIGXCPU fires first
    const exp::ResultSet rs = c.run(copts);

    const JobOutcome *o = rs.find("spin", "cfg");
    ASSERT_NE(o, nullptr);
    EXPECT_EQ(o->status, JobStatus::Failed);
    EXPECT_EQ(o->errorKind, FailKind::ResourceLimit);
    EXPECT_EQ(o->termSignal, SIGXCPU);
    EXPECT_NE(o->error.find("CPU limit"), std::string::npos);
}

TEST(Campaign, MemRlimitTurnsRunawayAllocationIntoResourceLimit)
{
    exp::Campaign c;
    SimJob hog;
    hog.workload = "hog";
    hog.configSpec = "cfg";
    hog.runner = [](const SimJob &) -> RunResult {
        // Far beyond the cap below: under RLIMIT_AS this is a clean
        // std::bad_alloc inside the child, not an OOM-killed host.
        std::vector<char> ballast(4ull << 30);
        ballast[0] = 1;
        return {};
    };
    c.add(hog);

    CampaignOptions copts;
    copts.isolate = true;
    copts.jobs = 1;
    copts.maxAttempts = 1;
    copts.rlimitMemMb = 512;
    const exp::ResultSet rs = c.run(copts);

    const JobOutcome *o = rs.find("hog", "cfg");
    ASSERT_NE(o, nullptr);
    EXPECT_FALSE(o->ok);
    EXPECT_EQ(o->status, JobStatus::Failed);
    EXPECT_EQ(o->errorKind, FailKind::ResourceLimit);
}

// ---- reproducer bundles -------------------------------------------------

TEST(Bundle, ManifestEventsAndSourceAreReplayable)
{
    const std::string base = tempPath("bundle");
    fs::remove_all(base);
    SimJob job;
    job.workload = "fuzz-case";
    job.configSpec = "packing-replay";
    job.asmText = "nop\nhalt\n";
    JobOutcome o;
    o.workload = job.workload;
    o.configSpec = job.configSpec;
    o.status = JobStatus::Failed;
    o.errorKind = FailKind::Internal;
    o.error = "pipeline deadlock";
    o.attempts = 1;

    const std::string dir =
        exp::writeReproducerBundle(base, job, o, "c42 commit ...\n");
    ASSERT_FALSE(dir.empty());
    EXPECT_EQ(dir, exp::bundlePathFor(base, job));

    const std::string manifest = slurp(dir + "/MANIFEST.txt");
    EXPECT_NE(manifest.find("nwsim run repro.s --config packing-replay "
                            "--check"),
              std::string::npos);
    EXPECT_NE(manifest.find("pipeline deadlock"), std::string::npos);
    EXPECT_EQ(slurp(dir + "/repro.s"), job.asmText);
    EXPECT_EQ(slurp(dir + "/events.log"), "c42 commit ...\n");
    EXPECT_EQ(exp::bundleEventsPath(base, job), dir + "/events.log");
    fs::remove_all(base);
}

// ---- reproducer shrinking (crash → bundle → shrink loop) ----------------

TEST(AsmShrink, DdminReducesToTheFailingCore)
{
    // The "fault" needs both needle lines; everything else is chaff the
    // shrinker must strip.
    const std::string text = "pad0\npad1\nNEEDLE_A\npad2\npad3\n"
                             "pad4\nNEEDLE_B\npad5\n";
    const auto failsWithBothNeedles = [](const std::string &t) {
        return t.find("NEEDLE_A") != std::string::npos &&
               t.find("NEEDLE_B") != std::string::npos;
    };
    const AsmShrinkOutcome out =
        shrinkAsmLines(text, failsWithBothNeedles);
    EXPECT_TRUE(out.reproduced);
    EXPECT_EQ(out.originalLines, 8u);
    EXPECT_EQ(out.minimizedLines, 2u);
    EXPECT_EQ(out.minimizedText, "NEEDLE_A\nNEEDLE_B\n");
    EXPECT_GT(out.attempts, 1u);
}

TEST(AsmShrink, NonReproducingInputIsLeftUntouched)
{
    const std::string text = "one\ntwo\n";
    const AsmShrinkOutcome out =
        shrinkAsmLines(text, [](const std::string &) { return false; });
    EXPECT_FALSE(out.reproduced);
    EXPECT_EQ(out.minimizedText, text);
    EXPECT_EQ(out.attempts, 1u);
}

TEST(AsmShrink, AttemptBudgetBoundsTheWork)
{
    std::string text;
    for (int i = 0; i < 64; ++i)
        text += "line" + std::to_string(i) + "\n";
    unsigned calls = 0;
    const AsmShrinkOutcome out = shrinkAsmLines(
        text,
        [&calls](const std::string &t) {
            ++calls;
            return t.find("line63") != std::string::npos;
        },
        /*max_attempts=*/10);
    EXPECT_TRUE(out.reproduced);
    EXPECT_LE(out.attempts, 10u);
    EXPECT_EQ(out.attempts, calls);
    // Partial progress is fine; losing the failing line is not.
    EXPECT_NE(out.minimizedText.find("line63"), std::string::npos);
}

TEST(Bundle, InternalAsmFaultIsShrunkIntoTheBundle)
{
    // A hair-trigger deadlock watchdog makes any program an Internal
    // fault (the pipeline never commits within 1 cycle of filling), so
    // the full loop runs: fail → bundle → ddmin → repro.min.s.
    const std::string dir = tempPath("bundle_shrink");
    fs::remove_all(dir);
    SimJob job;
    job.workload = "wedged";
    job.configSpec = "baseline";
    job.config = exp::configBySpec("baseline");
    job.config.watchdogCycles = 1;
    job.opts.warmupInsts = 0;
    job.opts.measureInsts = 10000;
    job.opts.fastWarmup = false;
    job.asmText = "li r1, 1\nli r2, 2\nli r3, 3\n"
                  "addi r1, r1, 1\naddi r2, r2, 1\nhalt\n";

    CampaignOptions copts;
    copts.maxAttempts = 1;
    copts.bundleDir = dir;
    const JobOutcome out = exp::executeJobWithRetries(job, 0, copts);
    EXPECT_EQ(out.status, JobStatus::Failed);
    EXPECT_EQ(out.errorKind, FailKind::Internal);
    ASSERT_FALSE(out.bundlePath.empty());

    const std::string manifest = slurp(out.bundlePath + "/MANIFEST.txt");
    EXPECT_NE(manifest.find("minimized:  repro.min.s"),
              std::string::npos);
    EXPECT_EQ(slurp(out.bundlePath + "/repro.s"), job.asmText);

    // The minimized program must itself still reproduce the fault.
    const std::string minimized = slurp(out.bundlePath + "/repro.min.s");
    ASSERT_FALSE(minimized.empty());
    EXPECT_LT(minimized.size(), job.asmText.size());
    const Program prog = assembleText(minimized);
    SparseMemory mem;
    prog.load(mem);
    OutOfOrderCore core(job.config, mem, prog.entry);
    EXPECT_THROW(core.run(100000), DeadlockError);
    fs::remove_all(dir);
}

// ---- core deadlock watchdog ---------------------------------------------

TEST(Watchdog, DeadlockDiagnosticCarriesOccupancy)
{
    // An artificially hair-trigger watchdog trips while the pipeline is
    // still filling (no commit in the first cycles), which exercises
    // the diagnostic path without needing a genuinely wedged core.
    const Program prog = assembleText("nop\nnop\nhalt\n");
    CoreConfig cfg = exp::configBySpec("baseline");
    cfg.watchdogCycles = 1;
    SparseMemory mem;
    prog.load(mem);
    OutOfOrderCore core(cfg, mem, prog.entry);
    try {
        core.run(100);
        FAIL() << "expected DeadlockError";
    } catch (const DeadlockError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("pipeline deadlock"), std::string::npos);
        EXPECT_NE(msg.find("RUU"), std::string::npos);
        EXPECT_NE(msg.find("LSQ"), std::string::npos);
    }
}

TEST(Watchdog, DefaultLimitNeverFiresOnARealProgram)
{
    const RunResult r = tinyRun();  // would throw if the watchdog fired
    EXPECT_GT(r.core.committed, 0u);
}

} // namespace
} // namespace nwsim
