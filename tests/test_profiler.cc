/** Unit tests for the width profiler (Figures 1, 2, 4, 5 machinery). */

#include <gtest/gtest.h>

#include "core/profiler.hh"

namespace nwsim
{
namespace
{

TEST(Profiler, CumulativeDistribution)
{
    WidthProfiler p;
    p.recordOp(0x100, OpClass::IntAlu, 17, 2);              // width 5
    p.recordOp(0x104, OpClass::IntAlu, 65535, 1);           // width 16
    p.recordOp(0x108, OpClass::IntAlu, u64{1} << 32, 4);    // width 33
    p.recordOp(0x10c, OpClass::IntAlu, u64{1} << 60, 4);    // width 61
    EXPECT_EQ(p.totalOps(), 4u);
    EXPECT_DOUBLE_EQ(p.cumulativePercent(4), 0.0);
    EXPECT_DOUBLE_EQ(p.cumulativePercent(5), 25.0);
    EXPECT_DOUBLE_EQ(p.cumulativePercent(16), 50.0);
    EXPECT_DOUBLE_EQ(p.cumulativePercent(32), 50.0);
    EXPECT_DOUBLE_EQ(p.cumulativePercent(33), 75.0);
    EXPECT_DOUBLE_EQ(p.cumulativePercent(64), 100.0);
}

TEST(Profiler, CategoriesMatchFigure4Legend)
{
    EXPECT_EQ(widthCategory(OpClass::IntAlu), WidthCategory::Arithmetic);
    EXPECT_EQ(widthCategory(OpClass::MemRead),
              WidthCategory::Arithmetic);    // address calculation
    EXPECT_EQ(widthCategory(OpClass::Branch),
              WidthCategory::Arithmetic);
    EXPECT_EQ(widthCategory(OpClass::Logic), WidthCategory::Logical);
    EXPECT_EQ(widthCategory(OpClass::Shift), WidthCategory::Shift);
    EXPECT_EQ(widthCategory(OpClass::IntMult), WidthCategory::Multiply);
    EXPECT_EQ(widthCategory(OpClass::IntDiv), WidthCategory::Multiply);
}

TEST(Profiler, Narrow16And33Breakdown)
{
    WidthProfiler p;
    p.recordOp(0x1, OpClass::IntAlu, 3, 4);             // narrow16 arith
    p.recordOp(0x2, OpClass::Logic, 100, 200);          // narrow16 logic
    p.recordOp(0x3, OpClass::IntMult, 1000, 1000);      // narrow16 mult
    p.recordOp(0x4, OpClass::IntAlu, u64{1} << 32, 8);  // narrow33 arith
    p.recordOp(0x5, OpClass::Shift, u64{1} << 40, 1);   // wide shift
    EXPECT_DOUBLE_EQ(p.narrow16Percent(WidthCategory::Arithmetic), 20.0);
    EXPECT_DOUBLE_EQ(p.narrow16Percent(WidthCategory::Logical), 20.0);
    EXPECT_DOUBLE_EQ(p.narrow16Percent(WidthCategory::Multiply), 20.0);
    EXPECT_DOUBLE_EQ(p.narrow16Percent(WidthCategory::Shift), 0.0);
    EXPECT_DOUBLE_EQ(p.narrow16TotalPercent(), 60.0);
    // narrow33 is cumulative (includes the 16-bit ops).
    EXPECT_DOUBLE_EQ(p.narrow33Percent(WidthCategory::Arithmetic), 40.0);
    EXPECT_DOUBLE_EQ(p.narrow33TotalPercent(), 80.0);
}

TEST(Profiler, Figure2Fluctuation)
{
    WidthProfiler p;
    // PC 0x10 always narrow; PC 0x20 fluctuates; PC 0x30 always wide.
    p.recordOp(0x10, OpClass::IntAlu, 1, 2);
    p.recordOp(0x10, OpClass::IntAlu, 3, 4);
    p.recordOp(0x20, OpClass::IntAlu, 1, 2);
    p.recordOp(0x20, OpClass::IntAlu, u64{1} << 20, 2);
    p.recordOp(0x30, OpClass::IntAlu, u64{1} << 40, 2);
    EXPECT_DOUBLE_EQ(p.fluctuationPercent(), 100.0 / 3.0);
}

TEST(Profiler, OtherClassIgnored)
{
    WidthProfiler p;
    p.recordOp(0x10, OpClass::Other, 1, 2);
    EXPECT_EQ(p.totalOps(), 0u);
}

TEST(Profiler, ResetClears)
{
    WidthProfiler p;
    p.recordOp(0x10, OpClass::IntAlu, 1, 2);
    p.reset();
    EXPECT_EQ(p.totalOps(), 0u);
    EXPECT_DOUBLE_EQ(p.fluctuationPercent(), 0.0);
}

TEST(Profiler, EmptyProfilerIsZero)
{
    WidthProfiler p;
    EXPECT_DOUBLE_EQ(p.cumulativePercent(64), 0.0);
    EXPECT_DOUBLE_EQ(p.narrow16TotalPercent(), 0.0);
    EXPECT_DOUBLE_EQ(p.fluctuationPercent(), 0.0);
}

// ---- PcWidthMap (open-addressing per-PC table) --------------------------

TEST(PcWidthMap, InsertLookupAndSize)
{
    PcWidthMap map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.lookup(0x100), 0u);

    map.findOrInsert(0x100) |= 1;
    map.findOrInsert(0x104) |= 2;
    map.findOrInsert(0x100) |= 2;  // existing entry, same slot
    EXPECT_EQ(map.size(), 2u);
    EXPECT_EQ(map.lookup(0x100), 3u);
    EXPECT_EQ(map.lookup(0x104), 2u);
    EXPECT_EQ(map.lookup(0x108), 0u);
}

TEST(PcWidthMap, SurvivesGrowthAcrossManyPcs)
{
    // Far more PCs than the initial capacity: multiple rehash rounds.
    PcWidthMap map;
    constexpr u64 n = 10000;
    for (u64 i = 0; i < n; ++i)
        map.findOrInsert(0x400000 + 4 * i) |= 1 + (i % 2);
    EXPECT_EQ(map.size(), n);
    for (u64 i = 0; i < n; ++i)
        EXPECT_EQ(map.lookup(0x400000 + 4 * i), 1 + (i % 2)) << i;

    u64 visited = 0;
    map.forEach([&](Addr, u8 bits) {
        ++visited;
        EXPECT_NE(bits, 0u);
    });
    EXPECT_EQ(visited, n);
}

TEST(Profiler, MergeOrsPcBitsAndSumsHistograms)
{
    // PC 0x20 is narrow in one interval and wide in the other: only the
    // merged profiler can see the fluctuation.
    WidthProfiler a;
    a.recordOp(0x10, OpClass::IntAlu, 1, 2);
    a.recordOp(0x20, OpClass::IntAlu, 1, 2);
    WidthProfiler b;
    b.recordOp(0x20, OpClass::IntAlu, u64{1} << 20, 2);

    EXPECT_DOUBLE_EQ(a.fluctuationPercent(), 0.0);
    EXPECT_DOUBLE_EQ(b.fluctuationPercent(), 0.0);
    a.merge(b);
    EXPECT_EQ(a.totalOps(), 3u);
    EXPECT_DOUBLE_EQ(a.fluctuationPercent(), 50.0);  // 0x20 of {0x10,0x20}
}

TEST(Profiler, SnapshotRoundTripsAndIsSorted)
{
    WidthProfiler p;
    // Insert in descending PC order; the snapshot must still be sorted.
    p.recordOp(0x300, OpClass::IntAlu, u64{1} << 40, 1);
    p.recordOp(0x200, OpClass::IntAlu, 7, 1);
    p.recordOp(0x100, OpClass::IntAlu, 1, u64{1} << 20);
    p.recordOp(0x100, OpClass::IntAlu, 1, 2);

    const WidthProfilerSnapshot snap = p.snapshot();
    ASSERT_EQ(snap.pcWidthSeen.size(), 3u);
    EXPECT_LT(snap.pcWidthSeen[0].first, snap.pcWidthSeen[1].first);
    EXPECT_LT(snap.pcWidthSeen[1].first, snap.pcWidthSeen[2].first);

    const WidthProfiler back = WidthProfiler::fromSnapshot(snap);
    EXPECT_EQ(back.totalOps(), p.totalOps());
    EXPECT_DOUBLE_EQ(back.fluctuationPercent(), p.fluctuationPercent());
    EXPECT_DOUBLE_EQ(back.cumulativePercent(16),
                     p.cumulativePercent(16));
    // Bit-stable: snapshotting the rebuilt profiler reproduces the
    // original image exactly.
    const WidthProfilerSnapshot snap2 = back.snapshot();
    EXPECT_EQ(snap2.pcWidthSeen, snap.pcWidthSeen);
    EXPECT_EQ(snap2.widthHist, snap.widthHist);
}

} // namespace
} // namespace nwsim
