/**
 * Integration tests of operation packing inside the issue stage:
 * packing must actually happen, must speed narrow-heavy code up, must
 * never change architected results, and replay traps must fire and
 * recover (paper Section 5).
 */

#include "sim_test_util.hh"

#include "driver/presets.hh"

namespace nwsim
{
namespace
{

using test::buildProgram;
using test::runDifferential;

/** Many independent narrow adds: the ideal packing workload. */
Program
narrowAddStorm(unsigned count)
{
    return buildProgram([count](Assembler &as) {
        for (unsigned i = 0; i < count; ++i) {
            const RegIndex rc = static_cast<RegIndex>(1 + (i % 10));
            as.addi(rc, zeroReg, static_cast<i64>((i * 13) & 0x3fff));
        }
        as.halt();
    });
}

TEST(Packing, GroupsFormOnNarrowSameOpCode)
{
    const Program prog = narrowAddStorm(2000);
    auto run = runDifferential(prog, presets::packing(false));
    const CorePackingStats &ps = run.core->packingStats();
    EXPECT_GT(ps.packedGroups, 100u);
    EXPECT_GT(ps.packedInsts, 2 * ps.packedGroups);
    EXPECT_EQ(ps.replaySpeculations, 0u);
    EXPECT_EQ(ps.replayTraps, 0u);
}

TEST(Packing, DisabledMeansNoGroups)
{
    const Program prog = narrowAddStorm(500);
    auto run = runDifferential(prog, presets::baseline());
    EXPECT_EQ(run.core->packingStats().packedGroups, 0u);
    EXPECT_EQ(run.core->packingStats().packedInsts, 0u);
}

/**
 * Mispredict-drain loop: an LFSR produces a 50/50 branch whose
 * resolution sits behind a burst of 16 ready narrow adds; packing
 * drains the adds in fewer issue cycles, so mispredicted branches
 * resolve (and fetch redirects) earlier. This is the contention pattern
 * behind the paper's Figure 10 speedups — commit width still caps
 * steady-state IPC at 4.
 */
Program
mispredictDrainLoop(unsigned iters)
{
    return buildProgram([iters](Assembler &as) {
        as.li(1, 0xace1);
        as.li(2, static_cast<i64>(iters));
        as.label("loop");
        as.beq(2, "done");
        as.srli(4, 1, 2);
        as.xor_(4, 4, 1);
        as.srli(5, 1, 3);
        as.xor_(4, 4, 5);
        as.andi(4, 4, 1);
        as.srli(1, 1, 1);
        as.slli(5, 4, 15);
        as.or_(1, 1, 5);
        for (unsigned k = 0; k < 16; ++k)
            as.addi(static_cast<RegIndex>(6 + (k % 8)), 4,
                    static_cast<i64>(k));
        as.beq(4, "skip");
        as.addi(14, 14, 3);
        as.label("skip");
        as.subi(2, 2, 1);
        as.br("loop");
        as.label("done");
        as.halt();
    });
}

TEST(Packing, SpeedsUpBurstyNarrowCode)
{
    const Program prog = mispredictDrainLoop(1500);
    auto base = runDifferential(prog, presets::baseline());
    auto pack = runDifferential(prog, presets::packing(false));
    EXPECT_GT(pack.core->packingStats().packedGroups, 1000u);
    // Packing must relieve the issue bottleneck by a clear margin
    // (measured ~12% on this pattern).
    EXPECT_LT(pack.core->stats().cycles,
              base.core->stats().cycles * 93 / 100);
}

TEST(Packing, DifferentOpsDoNotShareAGroup)
{
    // Alternating add/xor: same-operation rule caps group formation,
    // but both keys can open groups in the same cycle.
    const Program prog = buildProgram([](Assembler &as) {
        for (unsigned i = 0; i < 1000; ++i) {
            const RegIndex rc = static_cast<RegIndex>(1 + (i % 10));
            if (i % 2)
                as.addi(rc, zeroReg, 5);
            else
                as.xori(rc, zeroReg, 5);
        }
        as.halt();
    });
    auto run = runDifferential(prog, presets::packing(false));
    EXPECT_GT(run.core->packingStats().packedGroups, 0u);
}

TEST(Packing, WideOperandsDoNotPackWithoutReplay)
{
    const Program prog = buildProgram([](Assembler &as) {
        as.li(20, i64{1} << 40);    // wide
        for (unsigned i = 0; i < 400; ++i) {
            const RegIndex rc = static_cast<RegIndex>(1 + (i % 8));
            as.add(rc, 20, 20);     // wide operands
        }
        as.halt();
    });
    auto run = runDifferential(prog, presets::packing(false));
    EXPECT_EQ(run.core->packingStats().packedInsts, 0u);
}

TEST(Packing, ReplayPackingPacksAddressArithmetic)
{
    // addi on a 33-bit base register: one wide operand + narrow
    // immediate = the Section 5.3 target pattern.
    const Program prog = buildProgram([](Assembler &as) {
        as.la(20, "blob");          // 33-bit pointer
        for (unsigned i = 0; i < 600; ++i) {
            const RegIndex rc = static_cast<RegIndex>(1 + (i % 8));
            as.addi(rc, 20, static_cast<i64>((i * 8) & 0xff));
        }
        as.halt();
        as.dataLabel("blob");
        as.dataZeros(64);
    });
    auto strict = runDifferential(prog, presets::packing(false));
    auto replay = runDifferential(prog, presets::packing(true));
    EXPECT_EQ(strict.core->packingStats().replaySpeculations, 0u);
    EXPECT_GT(replay.core->packingStats().replaySpeculations, 100u);
    // Offsets never carry into bit 16 here: no traps.
    EXPECT_EQ(replay.core->packingStats().replayTraps, 0u);
    EXPECT_LE(replay.core->stats().cycles,
              strict.core->stats().cycles);
}

TEST(Packing, ReplayTrapsFireAndRecover)
{
    // Base chosen so +offset carries out of the low 16 bits about half
    // the time: traps must fire, and results must stay exact.
    const Program prog = buildProgram([](Assembler &as) {
        as.li(20, (i64{1} << 32) + 0xff00);
        as.li(21, 0);
        for (unsigned i = 0; i < 300; ++i) {
            const RegIndex rc = static_cast<RegIndex>(1 + (i % 8));
            // offsets 0..0x1f8: crosses 0x10000 when i*... > 0x100.
            as.addi(rc, 20, static_cast<i64>((i * 16) & 0x1ff));
            as.add(21, 21, rc);
        }
        as.halt();
    });
    auto run = runDifferential(prog, presets::packing(true));
    EXPECT_GT(run.core->packingStats().replayTraps, 10u);
}

TEST(Packing, ReplayTrapsOnBit15CarryBoundary)
{
    // Operand pairs that straddle the bit-15/16 boundary: 0x7fff + 1
    // stays inside 16 bits, but 0xffff + 1 = 0x10000 carries out of the
    // low-16 lane, so a replay-packed lane would drop the carry. Every
    // sum must still commit exactly, and the carry cases must trap.
    const Program prog = buildProgram([](Assembler &as) {
        as.li(20, (i64{1} << 32) + 0xffff); // wide base, lane all-ones
        as.li(21, (i64{1} << 32) + 0x7fff); // wide base, lane max-pos
        for (unsigned i = 0; i < 200; ++i) {
            const RegIndex rc = static_cast<RegIndex>(1 + (i % 6));
            // +1 on the 0xffff base always carries across bit 16.
            as.addi(rc, 20, 1);
            // +1 on the 0x7fff base crosses bit 15 only: no carry-out.
            as.addi(static_cast<RegIndex>(7 + (i % 6)), 21, 1);
        }
        as.halt();
    });
    auto run = runDifferential(prog, presets::packing(true));
    const CorePackingStats &ps = run.core->packingStats();
    EXPECT_GT(ps.replaySpeculations, 100u);
    EXPECT_GT(ps.replayTraps, 50u);
    // The no-carry half must not be trapping too (traps are per-lane,
    // not blanket).
    EXPECT_LT(ps.replayTraps, ps.replaySpeculations);
}

TEST(Packing, ReplayTrapsOnBit47CarryRipple)
{
    // A carry rippling all the way through bit 47/48: base 0x0000ffff
    // ffffffff plus 1 flips the entire upper mux region. The packed
    // lane result (upper bits passed through unchanged) would be wrong
    // by 2^16 - every such add must trap and re-issue full width, and
    // the committed values must be exact.
    const Program prog = buildProgram([](Assembler &as) {
        as.li(20, (i64{1} << 48) - 1); // all-ones through bit 47
        as.li(22, 0);
        for (unsigned i = 0; i < 150; ++i) {
            const RegIndex rc = static_cast<RegIndex>(1 + (i % 8));
            as.addi(rc, 20, 1);        // ripples into bit 48
            as.add(22, 22, rc);
        }
        as.halt();
    });
    auto run = runDifferential(prog, presets::packing(true));
    EXPECT_GT(run.core->packingStats().replayTraps, 25u);
    // r22 accumulated 150 exact copies of 2^48.
    EXPECT_EQ(run.core->reg(22), u64{150} << 48);
}

TEST(Packing, LanesPerAluCapsGroupSize)
{
    Program prog = narrowAddStorm(1200);
    CoreConfig two = presets::packing(false);
    two.packing.lanesPerAlu = 2;
    CoreConfig four = presets::packing(false);
    four.packing.lanesPerAlu = 4;
    auto run2 = runDifferential(prog, two);
    auto run4 = runDifferential(prog, four);
    // More lanes -> at least as much packing throughput.
    EXPECT_LE(run4.core->stats().cycles, run2.core->stats().cycles);
    const auto &p2 = run2.core->packingStats();
    EXPECT_LE(p2.packedInsts, 2 * p2.packedGroups);
}

TEST(Packing, PerSlotAccountingAblation)
{
    const Program prog = mispredictDrainLoop(800);
    CoreConfig one_slot = presets::packing(false);
    CoreConfig per_inst = one_slot;
    per_inst.packing.groupCountsOneSlot = false;
    auto a = runDifferential(prog, one_slot);
    auto b = runDifferential(prog, per_inst);
    // Per-instruction slot accounting only saves ALUs, not issue
    // bandwidth, so it can never beat shared-slot accounting.
    EXPECT_LE(a.core->stats().cycles, b.core->stats().cycles);
    EXPECT_LE(b.core->stats().ipc(), 4.001);
}

TEST(Packing, MixedWorkloadStaysExactUnderAllConfigs)
{
    // A mildly branchy loop mixing narrow/wide math, loads and stores.
    const Program prog = buildProgram([](Assembler &as) {
        as.la(16, "arr");
        as.li(1, 800);
        as.li(2, 0);
        as.li(3, 0x12345);
        as.label("loop");
        as.beq(1, "done");
        as.andi(4, 1, 63);
        as.slli(5, 4, 3);
        as.add(5, 5, 16);
        as.ldq(6, 0, 5);
        as.add(6, 6, 4);
        as.stq(6, 0, 5);
        as.add(2, 2, 6);
        as.mul(7, 4, 4);
        as.add(3, 3, 7);
        as.andi(8, 1, 7);
        as.bne(8, "skip");
        as.sub(2, 2, 3);
        as.label("skip");
        as.subi(1, 1, 1);
        as.br("loop");
        as.label("done");
        as.halt();
        as.dataLabel("arr");
        as.dataZeros(64 * 8);
    });
    runDifferential(prog, presets::packing(false));
    runDifferential(prog, presets::packing(true));
    runDifferential(prog, presets::decode8(presets::packing(true)));
}

} // namespace
} // namespace nwsim
